"""The pipeline-spec API: one canonical way to name pass transforms.

``pipeline=("recompute", "offload", "lower_p2p")`` replaces the
``lowered``/``fused`` booleans everywhere a transform is configured —
:class:`~repro.bench.harness.ExperimentConfig`,
:class:`~repro.perf.planner.PlanRequest`, the trainer, the CLI and the
serve schema. The booleans survive as deprecated aliases that must stay
bit-identical to their pipeline spelling, and every entry point must
reject malformed specs with the registered pass names enumerated.
"""

import warnings

import pytest

from repro.bench.harness import ExperimentConfig, run_configuration
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48
from repro.cli import main as cli_main
from repro.common.errors import ConfigurationError
from repro.common.units import GIB, parse_gib
from repro.perf.planner import plan_configurations
from repro.schedules.passes.pipeline import (
    PipelineParts,
    normalize_pipeline,
    pipeline_from_flags,
    split_pipeline,
)
from repro.serve.service import parse_plan_request


# ------------------------------------------------------- normalization
class TestNormalizePipeline:
    def test_none_and_empty_mean_no_passes(self):
        assert normalize_pipeline(None) == ()
        assert normalize_pipeline("") == ()
        assert normalize_pipeline([]) == ()

    def test_string_and_sequence_forms_agree(self):
        assert normalize_pipeline("offload, lower_p2p") == normalize_pipeline(
            ["offload", "lower_p2p"]
        )

    def test_canonical_order_is_spelling_independent(self):
        """recompute hoists to the head, lower_p2p/fuse_comm sink to the
        tail — every permutation keys the schedule cache identically."""
        canonical = ("recompute", "offload", "lower_p2p", "fuse_comm")
        for spec in (
            "recompute,offload,lower_p2p,fuse_comm",
            "fuse_comm,lower_p2p,offload,recompute",
            "offload,fuse_comm,recompute,lower_p2p",
        ):
            assert normalize_pipeline(spec) == canonical

    def test_pass_arguments_survive(self):
        assert normalize_pipeline("insert_sync:eager,offload") == (
            "insert_sync:eager",
            "offload",
        )

    def test_unknown_pass_enumerates_registered_names(self):
        with pytest.raises(ConfigurationError, match="unknown schedule pass"):
            normalize_pipeline("bogus")
        with pytest.raises(ConfigurationError) as err:
            normalize_pipeline("bogus")
        for name in ("offload", "recompute", "lower_p2p", "fuse_comm"):
            assert name in str(err.value)

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError, match="appears twice"):
            normalize_pipeline("offload,offload")

    def test_fuse_without_lower_rejected(self):
        with pytest.raises(ConfigurationError, match="fuse_comm.*lower_p2p"):
            normalize_pipeline("fuse_comm")

    def test_split_round_trips(self):
        parts = split_pipeline("fuse_comm,offload,recompute,lower_p2p")
        assert parts == PipelineParts(
            base=("offload",), recompute=True, lowered=True, fused=True
        )
        assert parts.offload
        assert parts.pipeline() == (
            "recompute",
            "offload",
            "lower_p2p",
            "fuse_comm",
        )

    def test_flags_are_the_reverse_map(self):
        pipe = pipeline_from_flags(recompute=True, lowered=True, fused=True)
        assert pipe == ("recompute", "lower_p2p", "fuse_comm")
        assert split_pipeline(pipe) == PipelineParts(
            recompute=True, lowered=True, fused=True
        )

    def test_build_options_omit_empty_passes(self):
        """Cache-key compatibility: a pass-less pipeline must produce the
        exact legacy option dict, no ``passes=()`` key."""
        assert split_pipeline("recompute").build_options() == {
            "recompute": True
        }
        assert split_pipeline("recompute,offload").build_options() == {
            "recompute": True,
            "passes": ("offload",),
        }


# ------------------------------------------------------- parse_gib
class TestParseGib:
    def test_none_passes_through(self):
        assert parse_gib(None) is None

    def test_gib_to_bytes(self):
        assert parse_gib(2.5) == 2.5 * GIB
        assert parse_gib(1) == GIB

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan"), True])
    def test_rejects_non_positive_and_non_numeric(self, bad):
        with pytest.raises(ConfigurationError, match="budget"):
            parse_gib(bad)

    def test_error_names_the_field(self):
        with pytest.raises(ConfigurationError, match="host budget"):
            parse_gib(-2, field="host budget")


# ------------------------------------------------------- harness aliases
CFG = dict(
    scheme="dapple",
    machine=PIZ_DAINT,
    workload=BERT48,
    width=2,
    depth=4,
    micro_batch=4,
    mini_batch=64,
)


class TestHarnessPipeline:
    def test_deprecated_booleans_warn(self):
        with pytest.warns(DeprecationWarning, match="pipeline="):
            ExperimentConfig(**CFG, lowered=True)
        with pytest.warns(DeprecationWarning, match="pipeline="):
            ExperimentConfig(**CFG, lowered=True, fused=True)

    def test_plain_and_pipeline_configs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ExperimentConfig(**CFG)
            ExperimentConfig(**CFG, recompute=True)  # recompute stays an axis
            ExperimentConfig(**CFG, pipeline=("offload", "lower_p2p"))

    def test_booleans_and_pipeline_conflict(self):
        with pytest.raises(ConfigurationError, match="not both"):
            ExperimentConfig(**CFG, lowered=True, pipeline=("lower_p2p",))

    def test_fused_requires_lowered(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match="fused.*lowered"):
                ExperimentConfig(**CFG, fused=True)

    def test_boolean_alias_parity(self):
        """The deprecated spelling and the pipeline spelling are the same
        configuration: identical results, bit for bit."""
        with pytest.warns(DeprecationWarning):
            legacy = run_configuration(ExperimentConfig(**CFG, lowered=True))
        spec = run_configuration(
            ExperimentConfig(**CFG, pipeline=("lower_p2p",))
        )
        assert spec.pipeline == ("lower_p2p",)
        assert legacy.pipeline == spec.pipeline
        assert legacy.iteration_time == spec.iteration_time
        assert legacy.throughput == spec.throughput
        assert legacy.peak_memory_bytes == spec.peak_memory_bytes

    def test_offload_pipeline_reports_host_tier(self):
        result = run_configuration(
            ExperimentConfig(**CFG, pipeline=("offload",))
        )
        base = run_configuration(ExperimentConfig(**CFG))
        assert result.host_peak_memory_bytes > 0.0
        assert base.host_peak_memory_bytes == 0.0
        assert result.peak_memory_bytes < base.peak_memory_bytes


# ------------------------------------------------------- planner pinning
class TestPlannerPipeline:
    PLAN = dict(num_workers=8, mini_batch=64, schemes=("dapple", "chimera"))

    def test_explicit_pipeline_pins_every_entry(self):
        entries = plan_configurations(
            PIZ_DAINT, BERT48, pipeline="offload,recompute", **self.PLAN
        )
        assert entries
        for e in entries:
            assert e.pipeline == ("recompute", "offload")
            assert e.recompute and e.offload
        # At least the deep cells actually park stashes on the host
        # (N=1 cells have nothing worth offloading).
        assert any(e.host_peak_memory_bytes > 0.0 for e in entries)

    def test_offload_axis_off_means_no_offloaded_entries(self):
        entries = plan_configurations(
            PIZ_DAINT, BERT48, offload=False, **self.PLAN
        )
        assert entries and not any(e.offload for e in entries)

    def test_tight_budget_winner_offloads(self):
        """Acceptance: with a budget too tight for the plain schedules,
        the ranked table's best entry uses the host tier and beats the
        best recompute-only plan at the same device budget."""
        budget = dict(self.PLAN, memory_budget_bytes=1.5 * GIB)
        entries = plan_configurations(PIZ_DAINT, BERT48, **budget)
        no_offload = plan_configurations(
            PIZ_DAINT, BERT48, offload=False, **budget
        )
        assert any(e.offload for e in entries)
        assert entries[0].throughput >= no_offload[0].throughput
        assert entries[0].peak_memory_bytes <= 1.5 * GIB

    def test_host_budget_prunes_offload(self):
        """A host tier too small for the stashes rejects the offloaded
        attempts; with the axis forced on, nothing survives."""
        with pytest.raises(ConfigurationError, match="memory.*budget"):
            plan_configurations(
                PIZ_DAINT,
                BERT48,
                offload=True,
                recompute=False,
                memory_budget_bytes=1.5 * GIB,
                host_memory_budget_bytes=1,
                **self.PLAN,
            )

    def test_pipeline_with_booleans_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            plan_configurations(
                PIZ_DAINT, BERT48, pipeline="offload", lowered=False,
                **self.PLAN,
            )
        with pytest.raises(ConfigurationError, match="not both"):
            plan_configurations(
                PIZ_DAINT, BERT48, pipeline="offload", fused=True,
                **self.PLAN,
            )


# ------------------------------------------------------- CLI
class TestCLIPipeline:
    def test_simulate_pipeline_spec(self, capsys):
        rc = cli_main(
            [
                "simulate", "--scheme", "dapple", "-W", "8", "-D", "4",
                "-B", "8", "--pipeline", "offload,lower_p2p",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pipeline" in out and "offload,lower_p2p" in out
        assert "host stash" in out

    def test_bad_pipeline_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as err:
            cli_main(
                [
                    "simulate", "--scheme", "dapple", "-W", "8", "-D", "4",
                    "-B", "8", "--pipeline", "bogus",
                ]
            )
        assert err.value.code == 2
        stderr = capsys.readouterr().err
        assert "unknown schedule pass" in stderr
        assert "offload" in stderr  # registered names enumerated

    def test_pipeline_conflicts_with_legacy_flags(self, capsys):
        rc = cli_main(
            [
                "simulate", "--scheme", "dapple", "-W", "8", "-D", "4",
                "-B", "8", "--pipeline", "lower_p2p", "--lower",
            ]
        )
        assert rc == 2
        assert "--pipeline replaces" in capsys.readouterr().out

    def test_plan_offload_axis(self, capsys):
        rc = cli_main(
            [
                "plan", "-P", "8", "--mini-batch", "64",
                "--schemes", "dapple", "chimera", "--budget-gib", "1.5",
                "--top", "3",
            ]
        )
        assert rc == 0
        assert ", O)" in capsys.readouterr().out


# ------------------------------------------------------- serve schema
GOOD = {
    "machine": "piz-daint",
    "workload": "bert-48",
    "num_workers": 4,
    "mini_batch": 16,
    "schemes": ["chimera", "dapple"],
}


class TestServePipeline:
    def test_pipeline_field_round_trips(self):
        req = parse_plan_request({**GOOD, "pipeline": "offload,lower_p2p"})
        assert req.pipeline == ("offload", "lower_p2p")
        req = parse_plan_request({**GOOD, "pipeline": ["offload"]})
        assert req.pipeline == ("offload",)

    def test_offload_and_host_budget_fields(self):
        req = parse_plan_request(
            {**GOOD, "offload": False, "host_memory_budget_bytes": 2 * GIB}
        )
        assert req.offload is False
        assert req.host_memory_budget_bytes == 2 * GIB

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({**GOOD, "pipeline": 7}, "field 'pipeline'"),
            ({**GOOD, "pipeline": [1]}, "field 'pipeline'"),
            ({**GOOD, "pipeline": "bogus"}, "unknown schedule pass"),
            ({**GOOD, "pipeline": "bogus"}, "offload"),
            ({**GOOD, "pipeline": "fuse_comm"}, "lower_p2p"),
            ({**GOOD, "offload": "yes"}, "'offload' must be a boolean"),
            ({**GOOD, "host_memory_budget_bytes": "2GiB"},
             "'host_memory_budget_bytes' must be a number"),
        ],
    )
    def test_rejections_name_the_problem(self, payload, fragment):
        with pytest.raises(ConfigurationError) as exc:
            parse_plan_request(payload)
        assert fragment in str(exc.value)
