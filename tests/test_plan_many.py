"""Batch planning: ``plan_many`` against ``plan_configurations``.

The contract under test is exact behavioural parity — the batch path is
a performance feature, so every outcome (entries *and* errors, field for
field and message for message) must match planning each request alone.
The heavyweight 1000-request speed-floor measurement lives in the
perfsuite acceptance test; this module covers correctness and the
dedup/bookkeeping seams on small grids.
"""

from __future__ import annotations

import pytest

from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48, GPT2_32
from repro.common.errors import ConfigurationError
from repro.perf import planner
from repro.perf.planner import (
    PlanOutcome,
    PlanRequest,
    plan_configurations,
    plan_many,
)

GIB = 2**30

#: Synchronous schemes only: the async steady-state measurement is tested
#: separately (one cell) because it costs seconds per configuration.
SYNC = ("chimera", "dapple", "zb_h1")


def request(**overrides) -> PlanRequest:
    base = dict(
        machine=PIZ_DAINT,
        workload=BERT48,
        num_workers=4,
        mini_batch=16,
        schemes=SYNC,
    )
    base.update(overrides)
    return PlanRequest(**base)


def sequential(req: PlanRequest):
    """The reference: one ``plan_configurations`` call per request."""
    try:
        return plan_configurations(
            req.machine,
            req.workload,
            num_workers=req.num_workers,
            mini_batch=req.mini_batch,
            memory_budget_bytes=req.memory_budget_bytes,
            schemes=req.schemes,
            min_depth=req.min_depth,
            max_micro_batch=req.max_micro_batch,
            lowered=req.lowered,
            fused=req.fused,
            recompute=req.recompute,
            top_k=req.top_k,
        )
    except ConfigurationError as err:
        return err


class TestParity:
    def test_heterogeneous_batch_matches_sequential_exactly(self):
        requests = [
            request(),
            request(mini_batch=32),
            request(machine=V100_CLUSTER, workload=GPT2_32, num_workers=8),
            request(memory_budget_bytes=6 * GIB),
            request(num_workers=8, schemes=("chimera", "zb_v")),
            request(fused=True),
            request(recompute=True),
        ]
        outcomes = plan_many(requests)
        assert [o.request for o in outcomes] == requests
        for req, outcome in zip(requests, outcomes):
            reference = sequential(req)
            assert outcome.ok, outcome.error
            assert list(outcome.entries) == reference

    def test_entries_are_bit_identical_not_just_close(self):
        req = request(num_workers=8, mini_batch=32)
        [outcome] = plan_many([req])
        reference = sequential(req)
        for got, want in zip(outcome.entries, reference):
            # Dataclass equality covers it, but spell out the float fields:
            # the contract is ==, not approx.
            assert got.iteration_time == want.iteration_time
            assert got.throughput == want.throughput
            assert got.bubble_ratio == want.bubble_ratio
            assert got.peak_memory_bytes == want.peak_memory_bytes

    def test_async_scheme_parity(self):
        """The threaded steady-state path returns the same entries."""
        req = request(schemes=("pipedream", "chimera"), mini_batch=8)
        [a] = plan_many([req], max_workers=1)
        [b] = plan_many([req], max_workers=4)
        assert a.ok and b.ok
        assert list(a.entries) == sequential(req)
        assert a.entries == b.entries


class TestErrors:
    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(num_workers=1), "at least two workers"),
            (dict(mini_batch=0), "mini-batch must be positive"),
            (dict(schemes=()), "empty scheme list"),
            (dict(min_depth=5), "no valid (W, D) factorization"),
            (
                dict(memory_budget_bytes=0.05 * GIB),
                "fits the 0.05 GiB memory budget",
            ),
        ],
    )
    def test_error_parity_with_sequential(self, overrides, fragment):
        req = request(**overrides)
        [outcome] = plan_many([req])
        reference = sequential(req)
        assert not outcome.ok
        assert isinstance(outcome.error, ConfigurationError)
        assert isinstance(reference, ConfigurationError)
        assert str(outcome.error) == str(reference)
        assert fragment in str(outcome.error)

    def test_unknown_scheme_raises_with_available_list(self):
        [outcome] = plan_many([request(schemes=("chimera", "nope"))])
        assert not outcome.ok
        assert "nope" in str(outcome.error)

    def test_one_bad_request_does_not_abort_the_batch(self):
        good, bad = request(), request(num_workers=1)
        outcomes = plan_many([bad, good, bad])
        assert [o.ok for o in outcomes] == [False, True, False]
        assert list(outcomes[1].entries) == sequential(good)
        # The same failed request yields the same captured error object.
        assert outcomes[0].error is outcomes[2].error

    def test_raise_or_entries(self):
        ok = PlanOutcome(request=request(), entries=())
        assert ok.raise_or_entries() == []
        err = ConfigurationError("boom")
        with pytest.raises(ConfigurationError, match="boom"):
            PlanOutcome(request=request(), error=err).raise_or_entries()

    def test_max_workers_validated(self):
        with pytest.raises(ConfigurationError, match="max_workers"):
            plan_many([request()], max_workers=0)


class TestDedup:
    def test_identical_requests_pruned_once(self, monkeypatch):
        calls = []
        orig = planner._prune_request

        def counting(req, ctx):
            calls.append(req)
            return orig(req, ctx)

        monkeypatch.setattr(planner, "_prune_request", counting)
        req = request()
        outcomes = plan_many([req, req, req])
        assert len(calls) == 1
        assert outcomes[0].entries == outcomes[1].entries == outcomes[2].entries

    def test_equal_but_distinct_objects_collapse(self, monkeypatch):
        """Dedup is by value (frozen dataclass equality), not identity."""
        calls = []
        orig = planner._prune_request

        def counting(req, ctx):
            calls.append(req)
            return orig(req, ctx)

        monkeypatch.setattr(planner, "_prune_request", counting)
        plan_many([request(), request()])
        assert len(calls) == 1

    def test_shared_sync_rows_simulated_once(self, monkeypatch):
        """Two requests over the same machine/workload share kernel rows:
        the batched call sees each distinct (graph, cost model) row once,
        not once per request."""
        seen = []
        orig = planner.simulate_batch_many

        def counting(items, **kwargs):
            seen.append(len(items))
            return orig(items, **kwargs)

        monkeypatch.setattr(planner, "simulate_batch_many", counting)
        base = request()
        [solo] = plan_many([base])
        solo_rows = seen.pop()
        # top_k differs -> distinct requests, but identical survivor cells.
        outcomes = plan_many([base, request(top_k=1)])
        assert len(seen) == 1  # ONE simulate_batch_many call for the batch
        assert seen[0] == solo_rows  # ... with no duplicated rows
        assert outcomes[0].ok and outcomes[1].ok
        assert outcomes[1].entries == outcomes[0].entries[:1]


class TestRequestSurface:
    def test_schemes_list_coerced_to_tuple_and_hashable(self):
        req = PlanRequest(
            machine=PIZ_DAINT,
            workload=BERT48,
            num_workers=4,
            mini_batch=16,
            schemes=["chimera", "dapple"],
        )
        assert req.schemes == ("chimera", "dapple")
        assert hash(req) == hash(request(schemes=("chimera", "dapple")))

    def test_top_k_truncates_after_ranking(self):
        full = sequential(request())
        [top] = plan_many([request(top_k=2)])
        assert list(top.entries) == full[:2]
