"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.transformer import TransformerLMConfig


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    """Route the persistent schedule cache into a per-session tmp dir.

    The process-wide cache's disk tier resolves ``REPRO_CACHE_DIR``
    lazily, so pointing the variable at a throwaway directory isolates
    the suite from (and never pollutes) the user's ``~/.cache/repro``.
    """
    import os

    root = tmp_path_factory.mktemp("repro-cache")
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old


@pytest.fixture
def tiny_config() -> TransformerLMConfig:
    """A 4-block transformer small enough for exhaustive comparisons."""
    return TransformerLMConfig(num_layers=4, dim=16, heads=2, vocab=19, seq=6, seed=7)


def make_micro_batches(
    config: TransformerLMConfig, n: int, batch: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Deterministic synthetic LM micro-batches (tokens, next-token targets)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        tokens = rng.integers(0, config.vocab, (batch, config.seq))
        targets = rng.integers(0, config.vocab, (batch, config.seq))
        out.append((tokens, targets))
    return out


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad
