"""Differential battery for the kernel's contended regimes.

The array kernel has no event-engine fallback: lowered schedules with
nonzero channel occupancy run an inline per-channel FIFO serialization
(full-duplex links) or a fixed-point relaxation (half-duplex links,
blocking collectives) and must still reproduce :func:`repro.sim.engine.
simulate` to 1e-9. This battery drives every registered scheme through
random ``(alpha, beta, f, b, w)`` cost models, flat and hierarchical
topologies in both duplex modes, and the {lowered, fused, recompute}
pipelines — plus the structural properties that make the contended paths
trustworthy: per-channel FIFO ordering, a distinguished error on
non-convergence, and the precomputed SEND table behind
``max_send_occupancy``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import KernelConvergenceError, ScheduleError
from repro.schedules.cache import schedule_artifacts
from repro.schedules.registry import available_schemes
from repro.sim import kernel as kernel_mod
from repro.sim.cost import CostModel
from repro.sim.engine import _dense_of, simulate
from repro.sim.kernel import (
    _serialize_channels,
    fast_path_supported,
    kernel_of,
    simulate_batch,
    simulate_batch_many,
    simulate_fast,
)
from repro.sim.network import FlatTopology, HierarchicalTopology, LinkSpec

ATOL = 1e-9

# Explicit profile for the battery (don't inherit defaults): each example
# runs the event engine as the reference, which takes tens of
# milliseconds on a lowered D=4 schedule, so the per-example deadline is
# disabled and the example count pinned where the grid — schemes ×
# topologies × duplex × pipelines — still gets dense coverage across runs.
BATTERY = settings(max_examples=30, deadline=None)

cost_units = st.floats(
    min_value=0.1, max_value=4.0, allow_nan=False, allow_infinity=False
)
alphas = st.floats(min_value=0.0, max_value=0.5)
betas = st.floats(min_value=0.01, max_value=0.5)

PIPELINES = ("lowered", "fused", "recompute")


def make_topology(kind: str, duplex: str, alpha: float, beta: float):
    if kind == "flat":
        return FlatTopology(LinkSpec(alpha, beta), duplex=duplex)
    return HierarchicalTopology(
        LinkSpec(alpha * 0.5, beta * 0.5),
        LinkSpec(alpha, beta),
        2,
        duplex=duplex,
    )


def contended_model(f, b, w, topology) -> CostModel:
    return CostModel(
        forward_time=f,
        backward_input_ratio=b,
        backward_weight_ratio=w,
        topology=topology,
        activation_message_bytes=4.0,
        stage_grad_bytes=7.0,
        data_parallel_width=2,
        sync_launch_overhead=0.01,
    )


def pipeline_artifacts(scheme: str, depth: int, n: int, pipeline: str):
    """(schedule, graph) for one named pipeline — always lowered."""
    arts = schedule_artifacts(
        scheme, depth, n, recompute=(pipeline == "recompute")
    )
    fused = pipeline == "fused"
    return arts.schedule_for(True, fused), arts.graph_for(True, fused)


def assert_results_match(ref, got):
    """Full SimulationResult equivalence to ATOL, transfers included."""
    assert got.compute_makespan == pytest.approx(ref.compute_makespan, abs=ATOL)
    assert got.iteration_time == pytest.approx(ref.iteration_time, abs=ATOL)
    assert set(got.timed) == set(ref.timed)
    for key, t_ref in ref.timed.items():
        t_got = got.timed[key]
        assert t_got.worker == t_ref.worker
        assert t_got.start == pytest.approx(t_ref.start, abs=ATOL)
        assert t_got.end == pytest.approx(t_ref.end, abs=ATOL)
    assert len(got.collectives) == len(ref.collectives)
    for c_ref, c_got in zip(ref.collectives, got.collectives):
        assert c_got.workers == c_ref.workers
        assert c_got.start == pytest.approx(c_ref.start, abs=ATOL)
        assert c_got.end == pytest.approx(c_ref.end, abs=ATOL)
    assert len(got.transfers) == len(ref.transfers)
    for t_ref, t_got in zip(ref.transfers, got.transfers):
        assert (t_got.src_worker, t_got.dst_worker) == (
            t_ref.src_worker,
            t_ref.dst_worker,
        )
        assert t_got.channel == t_ref.channel
        assert t_got.start == pytest.approx(t_ref.start, abs=ATOL)
        assert t_got.end == pytest.approx(t_ref.end, abs=ATOL)
        assert t_got.occupancy == pytest.approx(t_ref.occupancy, abs=ATOL)


# ------------------------------------------------------ differential battery
@BATTERY
@given(
    scheme=st.sampled_from(available_schemes()),
    n=st.integers(min_value=2, max_value=6),
    f=cost_units,
    b=cost_units,
    w=cost_units,
    alpha=alphas,
    beta=betas,
    topo_kind=st.sampled_from(["flat", "hier"]),
    duplex=st.sampled_from(["full", "half"]),
    pipeline=st.sampled_from(PIPELINES),
)
def test_contended_matches_event_engine(
    scheme, n, f, b, w, alpha, beta, topo_kind, duplex, pipeline
):
    schedule, graph = pipeline_artifacts(scheme, 4, n, pipeline)
    cm = contended_model(f, b, w, make_topology(topo_kind, duplex, alpha, beta))
    # beta > 0 on a lowered schedule: the hint must report contended
    # routing, and the kernel must still be engine-exact.
    assert not fast_path_supported(schedule, cm, graph=graph)
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )


@BATTERY
@given(
    scheme=st.sampled_from(["gpipe", "dapple", "chimera", "zb_h1"]),
    n=st.integers(min_value=2, max_value=5),
    f=cost_units,
    b=cost_units,
    beta=betas,
    duplex=st.sampled_from(["full", "half"]),
)
def test_contended_blocking_matches_event_engine(scheme, n, f, b, beta, duplex):
    """Blocking collectives + channel queueing: the full fixed point.

    Some scheme × blocking combinations are structurally impossible (a
    blocking collective barriers ops that feed its own members — e.g.
    Chimera's eager sync on a lowered schedule) and deadlock the event
    engine; the kernel must refuse those identically instead of
    inventing times for them.
    """
    schedule, graph = pipeline_artifacts(scheme, 4, n, "lowered")
    cm = contended_model(f, b, 1.0, make_topology("flat", duplex, 0.05, beta))
    assert not fast_path_supported(
        schedule, cm, graph=graph, blocking_sync=True
    )
    try:
        ref = simulate(schedule, cm, graph=graph, blocking_sync=True)
    except ScheduleError:
        with pytest.raises(ScheduleError):
            simulate_fast(schedule, cm, graph=graph, blocking_sync=True)
        return
    assert_results_match(
        ref, simulate_fast(schedule, cm, graph=graph, blocking_sync=True)
    )


def test_contended_batch_matches_event_engine():
    """simulate_batch mixes contended and free rows, all engine-exact."""
    arts = schedule_artifacts("chimera", 4, 6)
    schedule = arts.lowered()
    graph = arts.lowered_graph()
    models = [
        contended_model(1.0, 1.2, 0.8, make_topology("flat", "full", 0.05, 0.2)),
        contended_model(1.3, 0.9, 1.1, make_topology("hier", "half", 0.1, 0.3)),
        contended_model(0.8, 1.0, 1.0, make_topology("flat", "full", 0.05, 0.0)),
        contended_model(1.0, 1.0, 1.0, make_topology("flat", "half", 0.0, 0.4)),
    ]
    batch = simulate_batch(schedule, models, graph=graph)
    assert batch.used_fast_path == (False, False, True, False)
    for k, cm in enumerate(models):
        ref = simulate(schedule, cm, graph=graph)
        assert batch.compute_makespan[k] == pytest.approx(
            ref.compute_makespan, abs=ATOL
        )
        assert batch.iteration_time[k] == pytest.approx(
            ref.iteration_time, abs=ATOL
        )


def test_batch_many_heterogeneous_shapes():
    """simulate_batch_many: one call across (scheme, D, N, pipeline) shapes."""
    rows = [
        ("gpipe", 4, 4, "lowered", make_topology("flat", "full", 0.05, 0.25)),
        ("gpipe", 4, 4, "lowered", make_topology("flat", "full", 0.05, 0.0)),
        ("chimera", 2, 6, "fused", make_topology("hier", "full", 0.1, 0.2)),
        ("dapple", 4, 3, "recompute", make_topology("flat", "half", 0.05, 0.3)),
        ("zb_v", 2, 4, "lowered", make_topology("flat", "full", 0.02, 0.1)),
        ("gpipe", 4, 4, "lowered", make_topology("flat", "full", 0.05, 0.25)),
    ]
    items, graphs = [], []
    for scheme, depth, n, pipeline, topo in rows:
        schedule, graph = pipeline_artifacts(scheme, depth, n, pipeline)
        items.append((schedule, contended_model(1.0, 1.1, 0.9, topo)))
        graphs.append(graph)
    batch = simulate_batch_many(items, graphs=graphs)
    assert len(batch) == len(rows)
    assert batch.used_fast_path == (False, True, False, False, False, False)
    for k, (schedule, cm) in enumerate(items):
        ref = simulate(schedule, cm, graph=graphs[k])
        assert batch.schedules[k] is schedule
        assert batch.compute_makespan[k] == pytest.approx(
            ref.compute_makespan, abs=ATOL
        )
        assert batch.iteration_time[k] == pytest.approx(
            ref.iteration_time, abs=ATOL
        )
        busy = [ref.busy_time(worker) for worker in range(schedule.num_workers)]
        assert np.allclose(batch.worker_busy[k], busy, atol=1e-6)


# ------------------------------------------------------------ FIFO property
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_channel_fifo_ordering_property(data):
    """Wire starts are FIFO per channel: monotone in enqueue order, with
    no occupancy overlap, and never before the payload is ready."""
    kernel = kernel_of(schedule_artifacts("dapple", 4, 5).lowered_graph())
    n = len(kernel.send_oid)
    assert n > 0
    send_end = np.array(
        data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=50.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    occupancy = np.array(
        data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=5.0),
                min_size=n,
                max_size=n,
            )
        )
    )
    chan = kernel.send_worker * kernel.num_workers + kernel.send_dst_w
    wire_start = _serialize_channels(kernel, send_end, occupancy, chan)
    assert (wire_start >= send_end - ATOL).all()
    # Enqueue order = the engine's event-pop order.
    order = np.lexsort((kernel.send_row_pos, kernel.send_worker, send_end))
    last_start: dict[int, float] = {}
    last_free: dict[int, float] = {}
    for i in order.tolist():
        c = int(chan[i])
        if c in last_start:
            assert wire_start[i] >= last_start[c] - ATOL
            assert wire_start[i] >= last_free[c] - ATOL
        last_start[c] = float(wire_start[i])
        last_free[c] = float(wire_start[i] + occupancy[i])


def test_simulated_transfers_never_overlap_a_channel():
    """End-to-end FIFO: per channel, occupancy intervals are disjoint."""
    arts = schedule_artifacts("gpipe", 4, 8)
    cm = contended_model(1.0, 1.0, 1.0, make_topology("flat", "half", 0.05, 0.4))
    result = simulate_fast(arts.lowered(), cm, graph=arts.lowered_graph())
    by_channel: dict[tuple, list] = {}
    for t in result.transfers:
        assert t.channel is not None
        by_channel.setdefault(t.channel, []).append(t)
    assert by_channel
    for transfers in by_channel.values():
        transfers.sort(key=lambda t: t.start)
        for prev, nxt in zip(transfers, transfers[1:]):
            assert nxt.start >= prev.start + prev.occupancy - ATOL


# -------------------------------------------------------- non-convergence
def test_sweep_cap_raises_distinguished_error(monkeypatch):
    """Hitting the relaxation cap raises KernelConvergenceError — the
    kernel never returns non-converged times."""
    arts = schedule_artifacts("gpipe", 4, 6)
    schedule = arts.lowered()
    graph = arts.lowered_graph()
    cm = contended_model(1.0, 1.0, 1.0, make_topology("flat", "half", 0.05, 0.4))
    # Sanity: the real cap converges and matches the engine.
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )
    monkeypatch.setattr(kernel_mod, "MAX_RELAXATION_SWEEPS", 1)
    with pytest.raises(KernelConvergenceError) as err:
        simulate_fast(schedule, cm, graph=graph)
    assert "1 sweep" in str(err.value)


def test_sweep_cap_raises_in_batch_path(monkeypatch):
    arts = schedule_artifacts("gpipe", 4, 6)
    cm = contended_model(1.0, 1.0, 1.0, make_topology("flat", "half", 0.05, 0.4))
    monkeypatch.setattr(kernel_mod, "MAX_RELAXATION_SWEEPS", 1)
    with pytest.raises(KernelConvergenceError):
        simulate_batch(
            arts.lowered(), [cm, cm.with_(forward_time=1.5)],
            graph=arts.lowered_graph(),
        )


# ----------------------------------------------------- SEND-table telemetry
def test_max_send_occupancy_reads_precomputed_table():
    """The occupancy check is O(sends) over the kernel's static SEND
    table — no per-call rescan of the dense op list."""
    arts = schedule_artifacts("dapple", 4, 6)
    graph = arts.lowered_graph()
    kernel = kernel_of(graph)
    cm = contended_model(1.0, 1.0, 1.0, make_topology("flat", "full", 0.05, 0.2))
    _, occupancy, _ = kernel.send_tables(cm)
    expected = float(occupancy.max())
    assert expected > 0.0
    assert kernel.max_send_occupancy(cm) == expected
    # Poison the per-op scan sources after the kernel is built: a
    # rescanning implementation would crash or change its answer.
    dense = _dense_of(graph)
    saved_send_info, saved_ops_flat = dense.send_info, dense.ops_flat
    try:
        dense.send_info = None
        dense.ops_flat = None
        assert kernel.max_send_occupancy(cm) == expected
        assert not fast_path_supported(arts.lowered(), cm, graph=graph)
    finally:
        dense.send_info = saved_send_info
        dense.ops_flat = saved_ops_flat
    # Zero-beta links report zero occupancy (the single-sweep hint).
    free = contended_model(
        1.0, 1.0, 1.0, make_topology("flat", "full", 0.05, 0.0)
    )
    assert kernel.max_send_occupancy(free) == 0.0
