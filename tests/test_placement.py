"""Stage placement: linear, reversed, and generalized bidirectional maps."""

import pytest

from repro.common.errors import ScheduleError
from repro.schedules.placement import StagePlacement


class TestLinear:
    def test_stage_on_matching_worker(self):
        p = StagePlacement.linear(4)
        assert [p.worker_of(0, s) for s in range(4)] == [0, 1, 2, 3]

    def test_single_replica(self):
        assert StagePlacement.linear(4).num_replicas == 1

    def test_direction_is_down(self):
        assert StagePlacement.linear(4).direction(0) == 1

    def test_single_stage(self):
        p = StagePlacement.linear(1)
        assert p.worker_of(0, 0) == 0
        assert p.direction(0) == 1

    def test_reversed(self):
        p = StagePlacement.reversed_linear(4)
        assert [p.worker_of(0, s) for s in range(4)] == [3, 2, 1, 0]
        assert p.direction(0) == -1


class TestBidirectional:
    def test_f1_down_is_linear(self):
        p = StagePlacement.bidirectional(4)
        assert [p.worker_of(0, s) for s in range(4)] == [0, 1, 2, 3]

    def test_f1_up_is_reversed(self):
        p = StagePlacement.bidirectional(4)
        assert [p.worker_of(1, s) for s in range(4)] == [3, 2, 1, 0]

    def test_paper_figure8_down_pipeline1(self):
        """D=8, f=2: stage0 of down pipeline 1 maps to worker 4 (paper §3.6)."""
        p = StagePlacement.bidirectional(8, 2)
        assert [p.worker_of(2, s) for s in range(8)] == [4, 5, 6, 7, 0, 1, 2, 3]

    def test_paper_figure8_up_pipeline1_reversed(self):
        p = StagePlacement.bidirectional(8, 2)
        down = [p.worker_of(2, s) for s in range(8)]
        up = [p.worker_of(3, s) for s in range(8)]
        assert up == list(reversed(down))

    def test_each_worker_hosts_2f_pairs(self):
        for d, f in ((4, 1), (8, 2), (16, 4)):
            p = StagePlacement.bidirectional(d, f)
            for w in range(d):
                assert len(p.stages_on_worker(w)) == 2 * f

    def test_odd_depth_rejected(self):
        with pytest.raises(ScheduleError):
            StagePlacement.bidirectional(5)

    def test_f_must_divide_q(self):
        with pytest.raises(ScheduleError):
            StagePlacement.bidirectional(8, 3)

    def test_directions_alternate(self):
        p = StagePlacement.bidirectional(8, 2)
        assert [p.direction(r) for r in range(4)] == [1, -1, 1, -1]

    def test_stage_replica_group_symmetry(self):
        p = StagePlacement.bidirectional(8)
        for s in range(8):
            assert p.stage_replica_group(s) == tuple(sorted({s, 7 - s}))

    def test_first_last_stage_workers(self):
        p = StagePlacement.bidirectional(6)
        assert p.first_stage_worker(0) == 0
        assert p.last_stage_worker(0) == 5
        assert p.first_stage_worker(1) == 5
        assert p.last_stage_worker(1) == 0


class TestValidation:
    def test_duplicate_worker_in_row_rejected(self):
        with pytest.raises(ScheduleError):
            StagePlacement(3, ((0, 0, 2),))

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ScheduleError):
            StagePlacement(3, ((0, 1),))

    def test_out_of_range_lookup(self):
        p = StagePlacement.linear(3)
        with pytest.raises(ScheduleError):
            p.worker_of(0, 7)
