"""1F1B per-stage order generators."""

import pytest

from repro.common.errors import ScheduleError
from repro.schedules.onefb import (
    expanded_onefb_stage_order,
    gpipe_stage_order,
    onefb_stage_order,
)


def kinds(ops):
    return "".join("F" if op.is_forward else "B" for op in ops)


class TestOneFB:
    def test_first_stage_warmup(self):
        # warmup = D-1 = 3 forwards, one steady (F, B) pair, then the drain.
        ops = onefb_stage_order(0, 4, range(4))
        assert kinds(ops) == "FFF" + "FB" + "BBB"

    def test_last_stage_alternates(self):
        ops = onefb_stage_order(3, 4, range(4))
        assert kinds(ops) == "FBFBFBFB"

    def test_in_flight_cap_is_depth_minus_stage(self):
        for stage in range(4):
            ops = onefb_stage_order(stage, 4, range(8))
            live = peak = 0
            for op in ops:
                live += 1 if op.is_forward else -1
                peak = max(peak, live)
            assert peak == min(4 - stage, 8)

    def test_warmup_cap_limits_in_flight(self):
        ops = onefb_stage_order(0, 8, range(8), warmup_cap=2)
        live = peak = 0
        for op in ops:
            live += 1 if op.is_forward else -1
            peak = max(peak, live)
        assert peak == 3  # cap + the one-forward transient of an F-first pair

    def test_backward_first_steady(self):
        ops = onefb_stage_order(0, 4, range(4), warmup_cap=2, steady_backward_first=True)
        assert kinds(ops) == "FF" + "BF" * 2 + "BB"

    def test_backward_first_ignored_without_warmup(self):
        ops = onefb_stage_order(3, 4, range(2), steady_backward_first=True)
        assert kinds(ops) == "FBFB"

    def test_each_micro_batch_once(self):
        ops = onefb_stage_order(1, 4, range(6))
        fwd = [op.micro_batches[0] for op in ops if op.is_forward]
        bwd = [op.micro_batches[0] for op in ops if op.is_backward]
        assert fwd == list(range(6))
        assert bwd == list(range(6))

    def test_recompute_is_a_pass_not_a_helper_flag(self):
        # Recomputation moved to the recompute pass; the stage-order
        # helpers emit plain backwards.
        ops = onefb_stage_order(0, 2, range(2))
        assert not any(op.recompute for op in ops)

    def test_stage_out_of_range(self):
        with pytest.raises(ScheduleError):
            onefb_stage_order(4, 4, range(2))


class TestGPipe:
    def test_all_forwards_then_backwards(self):
        ops = gpipe_stage_order(0, 4, range(4))
        assert kinds(ops) == "FFFFBBBB"

    def test_stage_out_of_range(self):
        with pytest.raises(ScheduleError):
            gpipe_stage_order(9, 4, range(2))


class TestExpanded:
    def test_doubling_fuses_forwards(self):
        ops = expanded_onefb_stage_order(0, 4, range(4), mode="doubling")
        fwd = [op for op in ops if op.is_forward]
        assert all(len(op.micro_batches) == 2 for op in fwd)
        assert len(fwd) == 2

    def test_doubling_backwards_recompute_singles(self):
        ops = expanded_onefb_stage_order(0, 4, range(4), mode="doubling")
        bwd = [op for op in ops if op.is_backward]
        assert len(bwd) == 4
        assert all(op.recompute and len(op.micro_batches) == 1 for op in bwd)

    def test_doubling_needs_even_count(self):
        with pytest.raises(ScheduleError):
            expanded_onefb_stage_order(0, 4, range(3), mode="doubling")

    def test_halving_backward_parts(self):
        ops = expanded_onefb_stage_order(0, 4, range(2), mode="halving")
        bwd = [op for op in ops if op.is_backward]
        assert len(bwd) == 4
        assert sorted(op.part for op in bwd) == [(0, 2), (0, 2), (1, 2), (1, 2)]
        assert not any(op.recompute for op in bwd)

    def test_unknown_mode(self):
        with pytest.raises(ScheduleError):
            expanded_onefb_stage_order(0, 4, range(2), mode="tripling")

    def test_last_stage_unit_alternation(self):
        ops = expanded_onefb_stage_order(3, 4, range(4), mode="doubling")
        assert kinds(ops) == "FBBFBB"
