"""Integration: pipeline training vs sequential mini-batch SGD.

The paper's convergence-friendliness argument (§2): synchronous pipeline
schemes are algorithmically equivalent to standard mini-batch SGD.
Here that is checked *numerically* — the NumPy transformer trained through
each schedule must land on the same weights as the sequential reference.
The asynchronous schemes must *not* (weight staleness) while still
converging.
"""

import numpy as np
import pytest

from repro.models.reference import SequentialTrainer
from repro.models.transformer import build_transformer_layers
from repro.runtime.optimizers import SGD, Adam, Momentum
from repro.runtime.trainer import PipelineTrainer
from tests.conftest import make_micro_batches

ATOL = 1e-10


def weights_equal(trainer: PipelineTrainer, ref: SequentialTrainer, atol=ATOL):
    for a, b in zip(trainer.full_model_layers(), ref.layers):
        for k in a.params:
            if not np.allclose(a.params[k], b.params[k], atol=atol, rtol=0.0):
                return False
    return True


def max_weight_diff(trainer: PipelineTrainer, ref: SequentialTrainer) -> float:
    return max(
        float(np.abs(a.params[k] - b.params[k]).max())
        for a, b in zip(trainer.full_model_layers(), ref.layers)
        for k in a.params
    )


def run_both(tiny_config, scheme, *, depth=4, n=4, width=1, iters=3,
             opt=lambda: SGD(0.05), **kw):
    trainer = PipelineTrainer(
        tiny_config,
        scheme=scheme,
        depth=depth,
        num_micro_batches=n,
        width=width,
        optimizer_factory=opt,
        **kw,
    )
    ref = SequentialTrainer(build_transformer_layers(tiny_config), opt())
    pipeline_losses, ref_losses = [], []
    for it in range(iters):
        mbs = make_micro_batches(tiny_config, n * width, 2, seed=100 + it)
        pipeline_losses.append(trainer.train_step(mbs))
        ref_losses.append(ref.train_step(mbs))
    return trainer, ref, pipeline_losses, ref_losses


@pytest.mark.parametrize("scheme", ["chimera", "dapple", "gpipe", "gems"])
def test_synchronous_schemes_match_sgd(tiny_config, scheme):
    trainer, ref, lp, ls = run_both(tiny_config, scheme)
    assert lp == pytest.approx(ls, abs=1e-9)
    assert weights_equal(trainer, ref)


@pytest.mark.parametrize("scheme", ["chimera", "dapple"])
def test_synchronous_with_momentum(tiny_config, scheme):
    trainer, ref, _, _ = run_both(
        tiny_config, scheme, opt=lambda: Momentum(0.05, 0.9)
    )
    assert weights_equal(trainer, ref)


def test_chimera_with_adam(tiny_config):
    trainer, ref, _, _ = run_both(tiny_config, "chimera", opt=lambda: Adam(1e-3))
    assert weights_equal(trainer, ref, atol=1e-8)


def test_chimera_data_parallel_width(tiny_config):
    trainer, ref, lp, ls = run_both(tiny_config, "chimera", width=2)
    assert lp == pytest.approx(ls, abs=1e-9)
    assert weights_equal(trainer, ref)
    assert trainer.replicas_in_sync(atol=1e-12)


def test_chimera_recompute_matches_sgd(tiny_config):
    trainer, ref, _, _ = run_both(tiny_config, "chimera", recompute=True)
    assert weights_equal(trainer, ref)


@pytest.mark.parametrize("concat", ["direct", "halving", "doubling"])
def test_chimera_concat_strategies_match_sgd(tiny_config, concat):
    trainer, ref, _, _ = run_both(
        tiny_config, "chimera", n=8, schedule_options={"concat": concat}
    )
    assert weights_equal(trainer, ref)


def test_chimera_two_down_pipelines_match_sgd(tiny_config):
    trainer, ref, _, _ = run_both(
        tiny_config, "chimera", schedule_options={"num_down_pipelines": 2}
    )
    assert weights_equal(trainer, ref)


def test_chimera_underfilled_matches_sgd(tiny_config):
    trainer, ref, _, _ = run_both(tiny_config, "chimera", n=3)
    assert weights_equal(trainer, ref)


def test_replicas_stay_in_sync(tiny_config):
    trainer, _, _, _ = run_both(tiny_config, "chimera", iters=2)
    assert trainer.replicas_in_sync(atol=1e-12)


@pytest.mark.parametrize("scheme", ["pipedream", "pipedream_2bw"])
def test_async_schemes_are_stale_but_converge(tiny_config, scheme):
    trainer = PipelineTrainer(
        tiny_config,
        scheme=scheme,
        depth=4,
        num_micro_batches=4,
        optimizer_factory=lambda: SGD(0.05),
    )
    ref = SequentialTrainer(build_transformer_layers(tiny_config), SGD(0.05))
    losses = []
    for it in range(6):
        mbs = make_micro_batches(tiny_config, 4, 2, seed=it % 3)
        losses.append(trainer.train_step(mbs))
        ref.train_step(mbs)
    assert max_weight_diff(trainer, ref) > 1e-8  # staleness
    assert losses[-1] < losses[0]  # ...but it still learns

    sync = PipelineTrainer(
        tiny_config,
        scheme="chimera",
        depth=4,
        num_micro_batches=4,
        optimizer_factory=lambda: SGD(0.05),
    )
    for it in range(6):
        mbs = make_micro_batches(tiny_config, 4, 2, seed=it % 3)
        sync.train_step(mbs)
    # The synchronous run matches the reference where the async one cannot.
    assert max_weight_diff(sync, ref) < 1e-9


def test_pipedream_weight_version_consistency(tiny_config):
    """PipeDream must run without in-flight weight mutation artifacts: the
    executor stashes forward-time weights for the backward."""
    trainer = PipelineTrainer(
        tiny_config,
        scheme="pipedream",
        depth=4,
        num_micro_batches=8,
        optimizer_factory=lambda: SGD(0.05),
    )
    losses = [
        trainer.train_step(make_micro_batches(tiny_config, 8, 2, seed=s))
        for s in range(3)
    ]
    assert all(np.isfinite(loss) for loss in losses)


def test_pipedream_rejects_width_over_one(tiny_config):
    from repro.common.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PipelineTrainer(
            tiny_config, scheme="pipedream", depth=4, num_micro_batches=4, width=2
        )


def test_trainer_rejects_wrong_micro_batch_count(tiny_config):
    from repro.common.errors import ReproError

    trainer = PipelineTrainer(
        tiny_config, scheme="chimera", depth=4, num_micro_batches=4
    )
    with pytest.raises(ReproError):
        trainer.train_step(make_micro_batches(tiny_config, 3, 2))


# ---------------------------------------------------------------- pass layer
@pytest.mark.parametrize(
    "scheme", ["gpipe", "dapple", "chimera", "zb_v", "zb_vmin"]
)
def test_recompute_pass_bit_identical(tiny_config, scheme):
    """Acceptance (D=2 smoke model): explicit RECOMPUTE ops train to a
    loss bit-identical to the non-recompute path for every scheme kind
    (fused, split, bidirectional backwards)."""
    _, _, plain_losses, _ = run_both(tiny_config, scheme, depth=2, n=4)
    _, _, recompute_losses, _ = run_both(
        tiny_config, scheme, depth=2, n=4, recompute=True
    )
    assert recompute_losses == plain_losses


@pytest.mark.parametrize("scheme", ["dapple", "zb_v", "pipedream_2bw"])
def test_fused_comm_bit_identical(tiny_config, scheme):
    """Batched transfers (fuse_comm) execute bit-identically to the
    explicit SEND/RECV path and the implicit path."""
    _, _, plain_losses, _ = run_both(tiny_config, scheme, depth=2, n=4)
    _, _, fused_losses, _ = run_both(
        tiny_config, scheme, depth=2, n=4, lowered=True, fused=True
    )
    assert fused_losses == plain_losses


def test_pipedream_recompute_and_fusion_preserve_staleness_semantics(tiny_config):
    """PipeDream reruns rematerialization under the *stashed* weight
    version; recompute + fused paths must reproduce the plain PipeDream
    loss sequence exactly."""
    _, _, plain_losses, _ = run_both(tiny_config, "pipedream", depth=2, n=4)
    _, _, passed_losses, _ = run_both(
        tiny_config,
        "pipedream",
        depth=2,
        n=4,
        recompute=True,
        lowered=True,
        fused=True,
    )
    assert passed_losses == plain_losses
