"""B/W backward splitting: IR, dependencies, validation, cost, memory, runtime."""

import numpy as np
import pytest

from repro.common.errors import ReproError, ScheduleError, ValidationError
from repro.schedules.dependencies import EdgeKind, build_dependency_graph
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement
from repro.schedules.registry import build_schedule
from repro.schedules.validate import validate_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.models.layers import GELU, LayerNorm, Linear
from repro.runtime.stage_module import StageModule


def F(mb, stage, replica=0):
    return Operation(OpKind.FORWARD, replica, stage, micro_batches=(mb,))


def B(mb, stage, replica=0, part=(0, 1)):
    return Operation(OpKind.BACKWARD, replica, stage, micro_batches=(mb,), part=part)


def Bi(mb, stage, replica=0, part=(0, 1)):
    return Operation(
        OpKind.BACKWARD_INPUT, replica, stage, micro_batches=(mb,), part=part
    )


def W(mb, stage, replica=0, part=(0, 1)):
    return Operation(
        OpKind.BACKWARD_WEIGHT, replica, stage, micro_batches=(mb,), part=part
    )


def toy(rows, depth=2, n=1):
    return Schedule(
        scheme="toy",
        placement=StagePlacement.linear(depth),
        num_micro_batches=n,
        worker_ops=freeze_worker_ops(rows),
    )


class TestSplitOpsIR:
    def test_round_trip_through_ir(self):
        """B/W ops survive construction, freezing, and key identity."""
        rows = [
            [F(0, 0), Bi(0, 0), W(0, 0)],
            [F(0, 1), Bi(0, 1), W(0, 1)],
        ]
        schedule = toy(rows)
        ops = [op for _, op in schedule.all_ops()]
        assert [op.kind for op in ops[:3]] == [
            OpKind.FORWARD,
            OpKind.BACKWARD_INPUT,
            OpKind.BACKWARD_WEIGHT,
        ]
        # key() distinguishes the two halves, short() renders them apart.
        assert Bi(0, 0).key() != W(0, 0).key()
        assert Bi(0, 0).short() == "Bi0"
        assert W(0, 0).short() == "W0"
        assert schedule.count(OpKind.BACKWARD_INPUT) == 2
        assert schedule.count(OpKind.BACKWARD_WEIGHT) == 2

    def test_split_properties(self):
        assert Bi(0, 0).is_backward and not W(0, 0).is_backward
        assert W(0, 0).produces_weight_grads and not Bi(0, 0).produces_weight_grads
        assert B(0, 0).is_backward and B(0, 0).produces_weight_grads
        assert Bi(0, 0).is_split_backward and W(0, 0).is_split_backward
        assert not B(0, 0).is_split_backward
        assert Bi(0, 0).is_compute and W(0, 0).is_compute
        assert Bi(0, 0).work_units == 1.0 and W(0, 0).work_units == 1.0

    def test_split_ops_need_micro_batches(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.BACKWARD_INPUT, 0, 0)


class TestSplitDependencies:
    def rows(self):
        return [
            [F(0, 0), Bi(0, 0), W(0, 0)],
            [F(0, 1), Bi(0, 1), W(0, 1)],
        ]

    def test_input_grad_edges_mirror_fused_backward(self):
        g = build_dependency_graph(toy(self.rows()))
        kinds = sorted(e.kind.value for e in g.deps[Bi(0, 0).key()])
        assert kinds == ["gradient", "stash"]

    def test_weight_grad_depends_on_own_input_grad(self):
        g = build_dependency_graph(toy(self.rows()))
        edges = g.deps[W(0, 0).key()]
        assert [e.kind for e in edges] == [EdgeKind.DEFERRAL]
        assert edges[0].src == Bi(0, 0).key()
        # Local edge: never a p2p message.
        assert not edges[0].is_p2p_candidate

    def test_allreduce_waits_for_weight_half(self):
        rows = self.rows()
        rows[0].append(Operation(OpKind.ALLREDUCE, 0, 0))
        rows[1].append(Operation(OpKind.ALLREDUCE, 0, 1))
        g = build_dependency_graph(toy(rows))
        sync_key = Operation(OpKind.ALLREDUCE, 0, 0).key()
        srcs = [e.src for e in g.deps[sync_key] if e.kind is EdgeKind.SYNC]
        assert srcs == [W(0, 0).key()]

    def test_weight_without_input_grad_rejected(self):
        rows = [[F(0, 0), W(0, 0)], [F(0, 1), B(0, 1)]]
        with pytest.raises(ValidationError, match="input-gradient"):
            build_dependency_graph(toy(rows))

    def test_fused_plus_weight_half_rejected(self):
        """A fused B already produced the weight gradients; an extra W is a
        duplicate producer."""
        rows = [[F(0, 0), B(0, 0), W(0, 0)], [F(0, 1), B(0, 1)]]
        with pytest.raises(ValidationError, match="two weight-gradient"):
            build_dependency_graph(toy(rows))

    def test_fused_upstream_feeds_split_downstream(self):
        """A split Bi at stage 0 can consume a fused B's gradient at stage 1."""
        rows = [
            [F(0, 0), Bi(0, 0), W(0, 0)],
            [F(0, 1), B(0, 1)],
        ]
        validate_schedule(toy(rows))


class TestSplitValidation:
    def test_weight_before_input_grad_rejected(self):
        rows = [
            [F(0, 0), W(0, 0), Bi(0, 0)],
            [F(0, 1), Bi(0, 1), W(0, 1)],
        ]
        with pytest.raises(ValidationError, match="cycle|deadlock"):
            validate_schedule(toy(rows))

    def test_missing_weight_half_rejected(self):
        rows = [
            [F(0, 0), Bi(0, 0), W(0, 0)],
            [F(0, 1), Bi(0, 1)],
        ]
        with pytest.raises(ValidationError, match="disagree|input-gradient"):
            validate_schedule(toy(rows))

    def test_mixed_fused_and_split_rejected(self):
        rows = [
            [F(0, 0), B(0, 0)],
            [F(0, 1), B(0, 1), Bi(0, 1), W(0, 1)],
        ]
        with pytest.raises(ValidationError):
            validate_schedule(toy(rows))

    def test_split_parts_must_match(self):
        rows = [
            [F(0, 0), Bi(0, 0, part=(0, 2)), Bi(0, 0, part=(1, 2)), W(0, 0)],
            [
                F(0, 1),
                Bi(0, 1, part=(0, 2)),
                Bi(0, 1, part=(1, 2)),
                W(0, 1, part=(0, 2)),
                W(0, 1, part=(1, 2)),
            ],
        ]
        with pytest.raises(ValidationError, match="disagree|input-gradient"):
            validate_schedule(toy(rows))

    def test_valid_split_schedule_passes(self):
        rows = [
            [F(0, 0), F(1, 0), Bi(0, 0), W(0, 0), Bi(1, 0), W(1, 0)],
            [F(0, 1), Bi(0, 1), F(1, 1), Bi(1, 1), W(0, 1), W(1, 1)],
        ]
        validate_schedule(toy(rows, n=2))


class TestSplitCostModel:
    def test_default_split_halves_fused_backward(self):
        cm = CostModel.practical()  # F=1, B=2
        assert cm.compute_time(Bi(0, 0)) == pytest.approx(1.0)
        assert cm.compute_time(W(0, 0)) == pytest.approx(1.0)
        assert cm.compute_time(B(0, 0)) == pytest.approx(2.0)

    def test_explicit_split_sums_to_fused(self):
        cm = CostModel(
            forward_time=1.0, backward_input_ratio=1.2, backward_weight_ratio=0.7
        )
        assert cm.compute_time(Bi(0, 0)) == pytest.approx(1.2)
        assert cm.compute_time(W(0, 0)) == pytest.approx(0.7)
        # Back-compat contract: fused B = b + w.
        assert cm.compute_time(B(0, 0)) == pytest.approx(1.9)

    def test_recompute_charged_to_input_half(self):
        cm = CostModel.practical()  # recompute B = 3F
        bi = Operation(
            OpKind.BACKWARD_INPUT, 0, 0, micro_batches=(0,), recompute=True
        )
        assert cm.compute_time(bi) == pytest.approx(2.0)  # b + one remat F
        assert cm.compute_time(W(0, 0)) == pytest.approx(1.0)

    def test_invalid_split_ratio_rejected(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CostModel(backward_input_ratio=0.0)


class TestSplitSimEquivalence:
    @staticmethod
    def split_adjacent(fused: Schedule) -> Schedule:
        """Replace every fused B by Bi immediately followed by W."""
        rows = []
        for ops in fused.worker_ops:
            row = []
            for op in ops:
                if op.kind is OpKind.BACKWARD:
                    for kind in (OpKind.BACKWARD_INPUT, OpKind.BACKWARD_WEIGHT):
                        row.append(
                            Operation(
                                kind,
                                op.replica,
                                op.stage,
                                micro_batches=op.micro_batches,
                                part=op.part,
                            )
                        )
                else:
                    row.append(op)
            rows.append(row)
        return Schedule(
            scheme=f"{fused.scheme}_split",
            placement=fused.placement,
            num_micro_batches=fused.num_micro_batches,
            worker_ops=freeze_worker_ops(rows),
        )

    def test_single_stage_split_is_cost_neutral(self):
        """With no pipeline to overlap, Bi + W adjacent == fused exactly."""
        fused = build_schedule("dapple", 1, 4)
        split = self.split_adjacent(fused)
        validate_schedule(split)
        cost = CostModel.practical()
        assert simulate(split, cost).compute_makespan == pytest.approx(
            simulate(fused, cost).compute_makespan
        )

    @pytest.mark.parametrize("depth,n", [(2, 2), (4, 4), (4, 8)])
    def test_adjacent_split_conserves_work_never_slower(self, depth, n):
        """Splitting with W adjacent to its Bi keeps every worker's busy
        time identical (b + w = B) and can only shorten the makespan: the
        input gradient leaves for the upstream stage before W runs, which
        is precisely the mechanism the zero-bubble schedules exploit."""
        fused = build_schedule("dapple", depth, n)
        split = self.split_adjacent(fused)
        validate_schedule(split)
        cost = CostModel.practical()
        a = simulate(fused, cost)
        b = simulate(split, cost)
        for w in range(depth):
            assert b.busy_time(w) == pytest.approx(a.busy_time(w))
        assert b.compute_makespan <= a.compute_makespan + 1e-9


class TestSplitMemoryModel:
    def test_weight_half_releases_stash(self):
        rows = [
            [F(0, 0), F(1, 0), Bi(0, 0), Bi(1, 0), W(0, 0), W(1, 0)],
            [F(0, 1), Bi(0, 1), W(0, 1), F(1, 1), Bi(1, 1), W(1, 1)],
        ]
        report = analyze_memory(toy(rows, n=2), MemoryModel(activation_bytes=1.0))
        # Worker 0 holds both stashes through the Bi ops (released at W);
        # worker 1 releases each before forwarding the next.
        assert report.workers[0].activation_peak_units == 2
        assert report.workers[1].activation_peak_units == 1

    def test_weight_without_stash_rejected(self):
        rows = [
            [F(0, 0), B(0, 0), W(0, 0)],
            [F(0, 1), Bi(0, 1), W(0, 1)],
        ]
        with pytest.raises(Exception, match="stash|forward"):
            analyze_memory(toy(rows), MemoryModel())


class TestStageModuleSplit:
    def make_stage(self, seed=0):
        rng = np.random.default_rng(seed)
        return (
            StageModule([Linear(8, 8, rng=rng), GELU(), LayerNorm(8)]),
            np.random.default_rng(seed + 1),
        )

    def test_split_matches_fused_numerics(self):
        fused, rng = self.make_stage()
        split, _ = self.make_stage()
        x = rng.standard_normal((2, 8))
        dy = rng.standard_normal((2, 8))

        fused.forward(0, x)
        dx_fused = fused.backward(0, dy)

        split.forward(0, x)
        dx_split = split.backward_input(0, dy)
        assert np.allclose(dx_fused, dx_split)
        # Before W, no parameter gradients have landed.
        assert all(np.all(g == 0.0) for g in split.grad_arrays())
        assert split.is_in_flight(0)
        split.backward_weight(0)
        assert not split.is_in_flight(0)
        for gf, gs in zip(fused.grad_arrays(), split.grad_arrays()):
            assert np.allclose(gf, gs)

    def test_duplicate_input_grad_rejected(self):
        stage, rng = self.make_stage()
        x = rng.standard_normal((2, 8))
        stage.forward(0, x)
        stage.backward_input(0, x)
        with pytest.raises(ReproError, match="deferred"):
            stage.backward_input(0, x)

    def test_weight_grad_without_input_grad_rejected(self):
        stage, rng = self.make_stage()
        stage.forward(0, rng.standard_normal((2, 8)))
        with pytest.raises(ReproError, match="without"):
            stage.backward_weight(0)

    def test_deferred_buffer_accounting(self):
        stage, rng = self.make_stage()
        for mb in range(3):
            stage.forward(mb, rng.standard_normal((2, 8)))
        for mb in range(3):
            stage.backward_input(mb, rng.standard_normal((2, 8)))
        assert stage.deferred_weight_grads() == 3
        for mb in range(3):
            stage.backward_weight(mb)
        assert stage.deferred_weight_grads() == 0
        assert stage.in_flight() == 0
