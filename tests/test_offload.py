"""Activation offload: differential battery, two-tier memory, training.

The offload pass parks each forward's activation stash in host memory and
prefetches it back before the backward. These tests pin the three claims
the pass rests on:

* **Timing is free when the channel is free.** With no host channel (or a
  zero-cost one) the OFFLOAD/RELOAD ops add no time: every scheme's
  offloaded schedule reproduces the un-offloaded makespan to 1e-9.
* **The kernel is engine-exact on offloaded schedules.** Random host
  channels (both duplex modes) on top of random contended networks run
  through ``simulate_fast`` with no event-engine fallback and match
  :func:`repro.sim.engine.simulate` transfer-for-transfer.
* **Memory really moves tiers.** The device peak drops, the host peak
  appears, and ``MemoryReport.fits`` budgets each tier independently —
  and none of it perturbs bit-identical training.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules.cache import schedule_artifacts
from repro.schedules.registry import available_schemes, build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.kernel import fast_path_supported, simulate_batch, simulate_fast
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.network import HostChannel, LinkSpec
from tests.test_kernel_contended import (
    ATOL,
    BATTERY,
    alphas,
    assert_results_match,
    betas,
    contended_model,
    cost_units,
    make_topology,
)
from tests.test_training_equivalence import run_both, weights_equal

DEPTH = 4


def offload_artifacts(scheme, depth, n, *, recompute=False, lowered=False):
    arts = schedule_artifacts(
        scheme, depth, n, recompute=recompute, passes=("offload",)
    )
    return arts.schedule_for(lowered, False), arts.graph_for(lowered, False)


# ------------------------------------------------- zero-cost host channel
@BATTERY
@given(
    scheme=st.sampled_from(available_schemes()),
    n=st.integers(min_value=2, max_value=6),
    f=cost_units,
    b=cost_units,
    w=cost_units,
    recompute=st.booleans(),
    channel=st.sampled_from(["absent", "zero-cost"]),
)
def test_free_host_channel_is_makespan_neutral(
    scheme, n, f, b, w, recompute, channel
):
    """A host channel that costs nothing must cost nothing: the offloaded
    schedule of every scheme lands on the un-offloaded timings to 1e-9."""
    cm = CostModel(
        forward_time=f, backward_input_ratio=b, backward_weight_ratio=w
    )
    if channel == "zero-cost":
        cm = cm.with_(
            host_channel=HostChannel(LinkSpec(alpha=0.0, beta=0.0)),
            offload_message_bytes=4.0,
        )
    base = schedule_artifacts(scheme, DEPTH, n, recompute=recompute)
    ref = simulate(base.schedule, cm, graph=base.graph())
    schedule, graph = offload_artifacts(scheme, DEPTH, n, recompute=recompute)
    got = simulate(schedule, cm, graph=graph)
    assert got.compute_makespan == pytest.approx(
        ref.compute_makespan, abs=ATOL
    )
    assert got.iteration_time == pytest.approx(ref.iteration_time, abs=ATOL)


def test_costed_host_channel_emits_stash_transfers():
    """Sanity anchor for the battery: a *costed* channel does produce
    paired host copies (one d2h + one h2d per offloaded stash)."""
    schedule, graph = offload_artifacts("gpipe", DEPTH, 4)
    cm = CostModel(
        host_channel=HostChannel(LinkSpec(alpha=0.1, beta=0.2)),
        offload_message_bytes=2.0,
    )
    result = simulate(schedule, cm, graph=graph)
    stash = [t for t in result.transfers if t.payload == "stash"]
    assert stash and len(stash) % 2 == 0
    directions = {t.channel[2] for t in stash}
    assert directions == {"d2h", "h2d"}
    assert all(t.duration > 0 for t in stash)


# ------------------------------------------------- kernel vs event engine
@BATTERY
@given(
    scheme=st.sampled_from(available_schemes()),
    n=st.integers(min_value=2, max_value=6),
    f=cost_units,
    b=cost_units,
    w=cost_units,
    h_alpha=alphas,
    h_beta=betas,
    host_duplex=st.sampled_from(["full", "half"]),
    recompute=st.booleans(),
)
def test_offloaded_implicit_matches_event_engine(
    scheme, n, f, b, w, h_alpha, h_beta, host_duplex, recompute
):
    """Offload on implicit-comm schedules: the host channel is the only
    contended resource, in both duplex modes."""
    schedule, graph = offload_artifacts(scheme, DEPTH, n, recompute=recompute)
    cm = CostModel(
        forward_time=f,
        backward_input_ratio=b,
        backward_weight_ratio=w,
        host_channel=HostChannel(
            LinkSpec(alpha=h_alpha, beta=h_beta), duplex=host_duplex
        ),
        offload_message_bytes=2.0,
    )
    # Nonzero stash occupancy: the kernel's contended path, not a
    # fallback — the hint must say so and the result must be exact.
    # (Tiny N can leave every stash adjacent to its backward, in which
    # case the pass inserts nothing and the single sweep still applies.)
    offloaded = any(op.is_offload for _, op in schedule.all_ops())
    assert fast_path_supported(schedule, cm, graph=graph) == (not offloaded)
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )


@BATTERY
@given(
    scheme=st.sampled_from(available_schemes()),
    n=st.integers(min_value=2, max_value=5),
    f=cost_units,
    b=cost_units,
    w=cost_units,
    alpha=alphas,
    beta=betas,
    h_beta=betas,
    topo_kind=st.sampled_from(["flat", "hier"]),
    duplex=st.sampled_from(["full", "half"]),
    host_duplex=st.sampled_from(["full", "half"]),
)
def test_offloaded_lowered_matches_event_engine(
    scheme, n, f, b, w, alpha, beta, h_beta, topo_kind, duplex, host_duplex
):
    """The full mix: explicit SEND/RECV queueing on network channels plus
    stash copies queueing on per-worker host channels."""
    schedule, graph = offload_artifacts(scheme, DEPTH, n, lowered=True)
    cm = contended_model(
        f, b, w, make_topology(topo_kind, duplex, alpha, beta)
    ).with_(
        host_channel=HostChannel(
            LinkSpec(alpha=0.05, beta=h_beta), duplex=host_duplex
        ),
        offload_message_bytes=2.0,
    )
    assert not fast_path_supported(schedule, cm, graph=graph)
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )


def test_latency_only_host_channel_keeps_the_single_sweep():
    """A pure-latency channel (beta=0) has zero occupancy: nothing
    queues, so the kernel's closed-form sweep applies and still matches
    the engine — host copies pipeline like alpha-term wire transfers."""
    schedule, graph = offload_artifacts("dapple", DEPTH, 4)
    cm = CostModel(
        host_channel=HostChannel(LinkSpec(alpha=0.3, beta=0.0)),
        offload_message_bytes=2.0,
    )
    assert fast_path_supported(schedule, cm, graph=graph)
    assert_results_match(
        simulate(schedule, cm, graph=graph),
        simulate_fast(schedule, cm, graph=graph),
    )


def test_offloaded_batch_rows_are_engine_exact():
    """simulate_batch mixes free, latency-only, and contended host
    channels over one offloaded schedule; every row is engine-exact and
    the fast-path telemetry distinguishes them."""
    schedule, graph = offload_artifacts("chimera", DEPTH, 4)
    models = [
        CostModel(),
        CostModel(
            host_channel=HostChannel(LinkSpec(alpha=0.2, beta=0.0)),
            offload_message_bytes=2.0,
        ),
        CostModel(
            host_channel=HostChannel(LinkSpec(alpha=0.1, beta=0.3)),
            offload_message_bytes=2.0,
        ),
        CostModel(
            host_channel=HostChannel(
                LinkSpec(alpha=0.1, beta=0.3), duplex="half"
            ),
            offload_message_bytes=2.0,
        ),
    ]
    batch = simulate_batch(schedule, models, graph=graph)
    assert batch.used_fast_path == (True, True, False, False)
    for k, cm in enumerate(models):
        ref = simulate(schedule, cm, graph=graph)
        assert batch.compute_makespan[k] == pytest.approx(
            ref.compute_makespan, abs=ATOL
        )
        assert batch.iteration_time[k] == pytest.approx(
            ref.iteration_time, abs=ATOL
        )


# ------------------------------------------------------ two-tier memory
class TestTwoTierMemory:
    MODEL = MemoryModel(activation_bytes=1.0, weight_bytes=0.5)

    def reports(self, scheme="gpipe", n=8, **options):
        base = analyze_memory(
            build_schedule(scheme, DEPTH, n, **options), self.MODEL
        )
        off = analyze_memory(
            build_schedule(
                scheme, DEPTH, n, passes=("offload",), **options
            ),
            self.MODEL,
        )
        return base, off

    def test_offload_moves_peak_to_the_host_tier(self):
        base, off = self.reports()
        assert base.host_peak_bytes == 0.0
        assert off.host_peak_bytes > 0.0
        assert off.peak_bytes < base.peak_bytes
        # Conservation: bytes moved to the host never exceed what the
        # device held at its un-offloaded peak.
        assert off.host_peak_bytes <= base.peak_bytes

    def test_gpipe_offload_collapses_the_linear_stash(self):
        """GPipe's worker 0 holds all N stashes at once; offloading every
        non-adjacent stash leaves O(1) resident per worker."""
        base, off = self.reports("gpipe", n=8)
        w0_base = base.workers[0]
        w0_off = off.workers[0]
        assert w0_base.activation_peak_units == pytest.approx(8)
        assert w0_off.activation_peak_units <= 2
        assert w0_off.host_peak_bytes >= self.MODEL.activation_bytes * 6

    def test_composes_with_recompute(self):
        """recompute+offload stashes only the stage *input* on the host."""
        _, off = self.reports("dapple", n=8)
        _, both = self.reports("dapple", n=8, recompute=True)
        assert 0.0 < both.host_peak_bytes < off.host_peak_bytes
        assert both.peak_bytes <= off.peak_bytes

    def test_fits_budgets_each_tier_independently(self):
        _, off = self.reports()
        assert off.fits(off.peak_bytes)
        assert off.fits(off.peak_bytes, host_capacity_bytes=off.host_peak_bytes)
        assert not off.fits(
            off.peak_bytes, host_capacity_bytes=off.host_peak_bytes * 0.5
        )
        assert not off.fits(off.peak_bytes * 0.5)
        # None = unlimited host tier (the common case).
        assert off.fits(off.peak_bytes, host_capacity_bytes=None)


# ------------------------------------------------------ training parity
@pytest.mark.parametrize(
    "pipeline",
    [("offload",), ("recompute", "offload"), ("offload", "lower_p2p")],
)
def test_offloaded_training_matches_sgd(tiny_config, pipeline):
    """The executor's host stash round-trips activations bit-identically:
    offloaded pipeline training lands on the sequential SGD weights."""
    trainer, ref, lp, ls = run_both(
        tiny_config, "chimera", depth=2, pipeline=pipeline
    )
    assert "offload" in trainer.pipeline
    assert lp == pytest.approx(ls, abs=1e-9)
    assert weights_equal(trainer, ref)
