"""The ``repro serve`` service layer: validation, backpressure, HTTP.

The transport-free :class:`~repro.serve.service.PlannerService` carries
most of the behaviour (and most of the tests); one class drives the real
:class:`~repro.serve.http.PlannerHTTPServer` over a loopback socket to
pin the status-code mapping, the JSON shapes on the wire, and graceful
shutdown.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.common.errors import ConfigurationError, ServiceOverloadError
from repro.perf.planner import plan_configurations
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48
from repro.serve import PlannerHTTPServer, PlannerService
from repro.serve.service import parse_plan_request

GOOD = {
    "machine": "piz-daint",
    "workload": "bert-48",
    "num_workers": 4,
    "mini_batch": 16,
    "schemes": ["chimera", "dapple"],
}


class TestParseValidation:
    def test_good_payload_round_trips(self):
        req = parse_plan_request(GOOD)
        assert req.machine is PIZ_DAINT
        assert req.workload is BERT48
        assert req.schemes == ("chimera", "dapple")
        assert req.min_depth == 2 and req.max_micro_batch == 512

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2], "must be a JSON object"),
            ({**GOOD, "frobnicate": 1}, "unknown request field(s) ['frobnicate']"),
            ({k: v for k, v in GOOD.items() if k != "machine"},
             "missing required field 'machine'"),
            ({**GOOD, "machine": "cray-1"}, "available machines"),
            ({**GOOD, "workload": "llama"}, "available workloads"),
            ({**GOOD, "num_workers": "four"}, "'num_workers' must be an integer"),
            ({**GOOD, "num_workers": True}, "'num_workers' must be an integer"),
            ({**GOOD, "memory_budget_bytes": "2GiB"}, "'memory_budget_bytes'"),
            ({**GOOD, "schemes": "chimera"}, "'schemes' must be a list"),
            ({**GOOD, "schemes": [1]}, "'schemes' must be a list"),
            ({**GOOD, "lowered": 1}, "'lowered' must be a boolean"),
            ({**GOOD, "recompute": "yes"}, "'recompute' must be a boolean"),
            ({**GOOD, "top_k": 1.5}, "'top_k' must be an integer"),
        ],
    )
    def test_rejections_name_the_problem(self, payload, fragment):
        with pytest.raises(ConfigurationError, match=None) as exc:
            parse_plan_request(payload)
        assert fragment in str(exc.value)


class TestPlannerService:
    def test_plan_matches_library_call(self):
        service = PlannerService()
        response = service.plan(GOOD)
        assert response["ok"] is True
        assert response["elapsed_s"] > 0
        reference = plan_configurations(
            PIZ_DAINT, BERT48, num_workers=4, mini_batch=16,
            schemes=("chimera", "dapple"),
        )
        assert len(response["entries"]) == len(reference)
        top, want = response["entries"][0], reference[0]
        assert top["label"] == want.label()
        assert top["throughput"] == want.throughput
        assert top["iteration_time"] == want.iteration_time

    def test_plan_failure_is_a_200_level_result_not_an_exception(self):
        service = PlannerService()
        response = service.plan({**GOOD, "num_workers": 1})
        assert response["ok"] is False
        assert "at least two workers" in response["error"]

    def test_batch_preserves_order_and_isolates_errors(self):
        service = PlannerService()
        response = service.plan_batch([GOOD, {**GOOD, "num_workers": 1}, GOOD])
        oks = [r["ok"] for r in response["results"]]
        assert oks == [True, False, True]
        assert response["results"][0] == response["results"][2]

    def test_non_array_batch_rejected(self):
        service = PlannerService()
        with pytest.raises(ConfigurationError, match="JSON array"):
            service.plan_batch(GOOD)
        assert service.stats().rejected_invalid == 1

    def test_max_batch_rejected(self):
        service = PlannerService(max_batch=2)
        with pytest.raises(ConfigurationError, match="max_batch"):
            service.plan_batch([GOOD] * 3)

    def test_backpressure_sheds_load(self):
        """With the single admission slot held, the next call is shed with
        ServiceOverloadError instead of queueing."""
        service = PlannerService(max_inflight=1)
        assert service._slots.acquire(blocking=False)  # occupy the slot
        try:
            with pytest.raises(ServiceOverloadError, match="at capacity"):
                service.plan(GOOD)
        finally:
            service._slots.release()
        assert service.stats().rejected_overload == 1
        # The slot was not leaked: the next request goes through.
        assert service.plan(GOOD)["ok"] is True

    def test_invalid_payload_does_not_consume_a_slot(self):
        service = PlannerService(max_inflight=1)
        with pytest.raises(ConfigurationError):
            service.plan({**GOOD, "machine": "cray-1"})
        assert service.plan(GOOD)["ok"] is True
        stats = service.stats()
        assert stats.rejected_invalid == 1 and stats.rejected_overload == 0

    def test_malformed_hammer_leaves_no_inflight(self):
        """Admission-slot leak regression: a burst of malformed bodies
        (rejected at every stage of validation) must leave the in-flight
        gauge at zero and every slot free for a real request."""
        service = PlannerService(max_inflight=2)
        malformed = [
            GOOD,  # not wrapped in a list: "must be a JSON array"
            [{**GOOD, "machine": "cray-1"}],
            [{**GOOD, "frobnicate": 1}],
            ["not an object"],
            [{k: v for k, v in GOOD.items() if k != "workload"}],
        ]
        for _ in range(10):
            for payload in malformed:
                with pytest.raises(ConfigurationError):
                    service.plan_batch(payload)
        assert service.stats_json()["inflight"] == 0
        # Both slots are free, not leaked one-per-failure.
        assert service._slots.acquire(blocking=False)
        assert service._slots.acquire(blocking=False)
        assert not service._slots.acquire(blocking=False)
        service._slots.release()
        service._slots.release()
        assert service.plan(GOOD)["ok"] is True

    def test_planner_crash_releases_slot_and_gauge(self, monkeypatch):
        """Even an unexpected exception *inside* planning (after the slot
        is held) returns the slot and the gauge on the way out."""
        service = PlannerService(max_inflight=1)

        def boom(requests, max_workers):
            assert service.stats_json()["inflight"] == 1  # gauge is live
            raise RuntimeError("planner crashed mid-batch")

        monkeypatch.setattr("repro.serve.service.plan_many", boom)
        with pytest.raises(RuntimeError, match="mid-batch"):
            service.plan_batch([GOOD])
        assert service.stats_json()["inflight"] == 0
        monkeypatch.undo()
        # The single slot survived the crash: a real request still runs.
        assert service.plan(GOOD)["ok"] is True
        assert service.stats_json()["inflight"] == 0

    def test_stats_counters_and_cache_block(self):
        service = PlannerService()
        service.plan(GOOD)
        service.plan_batch([GOOD, {**GOOD, "num_workers": 1}])
        stats = service.stats_json()
        assert stats["requests"] == 3
        assert stats["batches"] == 2
        assert stats["plan_errors"] == 1
        assert stats["busy_seconds"] > 0
        assert 0.0 <= stats["schedule_cache"]["hit_rate"] <= 1.0
        assert stats["disk_cache"]["entries"] >= 0
        json.dumps(stats)  # wire-ready

    def test_ctor_validation(self):
        with pytest.raises(ConfigurationError, match="max_inflight"):
            PlannerService(max_inflight=0)
        with pytest.raises(ConfigurationError, match="max_batch"):
            PlannerService(max_batch=0)


@pytest.fixture(scope="class")
def http_server():
    server = PlannerHTTPServer(("127.0.0.1", 0), PlannerService())
    thread = threading.Thread(target=server.serve_forever)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        assert not thread.is_alive()


def _post(url: str, body: bytes, headers: dict | None = None):
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTP:
    def test_healthz(self, http_server):
        assert _get(f"{http_server}/healthz") == (200, {"ok": True})

    def test_plan_endpoint(self, http_server):
        status, body = _post(
            f"{http_server}/plan", json.dumps(GOOD).encode()
        )
        assert status == 200 and body["ok"] is True
        assert body["entries"][0]["throughput"] > 0

    def test_plan_many_endpoint(self, http_server):
        status, body = _post(
            f"{http_server}/plan_many",
            json.dumps([GOOD, {**GOOD, "num_workers": 1}]).encode(),
        )
        assert status == 200
        assert [r["ok"] for r in body["results"]] == [True, False]

    def test_validation_maps_to_400(self, http_server):
        status, body = _post(
            f"{http_server}/plan",
            json.dumps({**GOOD, "machine": "cray-1"}).encode(),
        )
        assert status == 400
        assert "available machines" in body["error"]

    def test_bad_json_maps_to_400(self, http_server):
        status, body = _post(f"{http_server}/plan", b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_route_404(self, http_server):
        assert _get(f"{http_server}/nope")[0] == 404
        assert _post(f"{http_server}/nope", b"{}")[0] == 404

    def test_oversized_body_maps_to_413(self, http_server):
        from repro.serve.http import MAX_BODY_BYTES

        status, body = _post(
            f"{http_server}/plan",
            b"{}",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        assert status == 413

    def test_stats_endpoint(self, http_server):
        status, body = _get(f"{http_server}/stats")
        assert status == 200
        assert body["requests"] >= 1
        assert body["inflight"] == 0
        assert "schedule_cache" in body

    def test_malformed_hammer_keeps_inflight_zero(self, http_server):
        """Wire-level slot-leak regression: hammer /plan and /plan_many
        with malformed bodies, then confirm the admission gauge reads
        zero and the server still plans."""
        for _ in range(5):
            assert _post(f"{http_server}/plan", b"{not json")[0] == 400
            assert _post(
                f"{http_server}/plan",
                json.dumps({**GOOD, "machine": "cray-1"}).encode(),
            )[0] == 400
            assert _post(
                f"{http_server}/plan_many", json.dumps(GOOD).encode()
            )[0] == 400
        status, body = _get(f"{http_server}/stats")
        assert status == 200 and body["inflight"] == 0
        assert _post(f"{http_server}/plan", json.dumps(GOOD).encode())[0] == 200

    def test_overload_maps_to_503(self):
        # A dedicated single-slot server whose slot we hold ourselves.
        server = PlannerHTTPServer(
            ("127.0.0.1", 0), PlannerService(max_inflight=1)
        )
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        try:
            assert server.service._slots.acquire(blocking=False)
            host, p = server.server_address[:2]
            status, body = _post(
                f"http://{host}:{p}/plan", json.dumps(GOOD).encode()
            )
            assert status == 503
            assert "retry with backoff" in body["error"]
        finally:
            server.service._slots.release()
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
