"""The ``repro serve`` service layer: validation, backpressure, HTTP.

The transport-free :class:`~repro.serve.service.PlannerService` carries
most of the behaviour (and most of the tests); one class drives the real
:class:`~repro.serve.http.PlannerHTTPServer` over a loopback socket to
pin the status-code mapping, the JSON shapes on the wire, and graceful
shutdown.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.common.errors import ConfigurationError, ServiceOverloadError
from repro.perf.planner import plan_configurations
from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48
from repro.serve import PlannerHTTPServer, PlannerService
from repro.serve.service import parse_plan_request

GOOD = {
    "machine": "piz-daint",
    "workload": "bert-48",
    "num_workers": 4,
    "mini_batch": 16,
    "schemes": ["chimera", "dapple"],
}


class TestParseValidation:
    def test_good_payload_round_trips(self):
        req = parse_plan_request(GOOD)
        assert req.machine is PIZ_DAINT
        assert req.workload is BERT48
        assert req.schemes == ("chimera", "dapple")
        assert req.min_depth == 2 and req.max_micro_batch == 512

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2], "must be a JSON object"),
            ({**GOOD, "frobnicate": 1}, "unknown request field(s) ['frobnicate']"),
            ({k: v for k, v in GOOD.items() if k != "machine"},
             "missing required field 'machine'"),
            ({**GOOD, "machine": "cray-1"}, "available machines"),
            ({**GOOD, "workload": "llama"}, "available workloads"),
            ({**GOOD, "num_workers": "four"}, "'num_workers' must be an integer"),
            ({**GOOD, "num_workers": True}, "'num_workers' must be an integer"),
            ({**GOOD, "memory_budget_bytes": "2GiB"}, "'memory_budget_bytes'"),
            ({**GOOD, "schemes": "chimera"}, "'schemes' must be a list"),
            ({**GOOD, "schemes": [1]}, "'schemes' must be a list"),
            ({**GOOD, "lowered": 1}, "'lowered' must be a boolean"),
            ({**GOOD, "recompute": "yes"}, "'recompute' must be a boolean"),
            ({**GOOD, "top_k": 1.5}, "'top_k' must be an integer"),
        ],
    )
    def test_rejections_name_the_problem(self, payload, fragment):
        with pytest.raises(ConfigurationError, match=None) as exc:
            parse_plan_request(payload)
        assert fragment in str(exc.value)


class TestPlannerService:
    def test_plan_matches_library_call(self):
        service = PlannerService()
        response = service.plan(GOOD)
        assert response["ok"] is True
        assert response["elapsed_s"] > 0
        reference = plan_configurations(
            PIZ_DAINT, BERT48, num_workers=4, mini_batch=16,
            schemes=("chimera", "dapple"),
        )
        assert len(response["entries"]) == len(reference)
        top, want = response["entries"][0], reference[0]
        assert top["label"] == want.label()
        assert top["throughput"] == want.throughput
        assert top["iteration_time"] == want.iteration_time

    def test_plan_failure_is_a_200_level_result_not_an_exception(self):
        service = PlannerService()
        response = service.plan({**GOOD, "num_workers": 1})
        assert response["ok"] is False
        assert "at least two workers" in response["error"]

    def test_batch_preserves_order_and_isolates_errors(self):
        service = PlannerService()
        response = service.plan_batch([GOOD, {**GOOD, "num_workers": 1}, GOOD])
        oks = [r["ok"] for r in response["results"]]
        assert oks == [True, False, True]
        assert response["results"][0] == response["results"][2]

    def test_non_array_batch_rejected(self):
        service = PlannerService()
        with pytest.raises(ConfigurationError, match="JSON array"):
            service.plan_batch(GOOD)
        assert service.stats().rejected_invalid == 1

    def test_max_batch_rejected(self):
        service = PlannerService(max_batch=2)
        with pytest.raises(ConfigurationError, match="max_batch"):
            service.plan_batch([GOOD] * 3)

    def test_backpressure_sheds_load(self):
        """With the single admission slot held, the next call is shed with
        ServiceOverloadError instead of queueing."""
        service = PlannerService(max_inflight=1)
        assert service._slots.acquire(blocking=False)  # occupy the slot
        try:
            with pytest.raises(ServiceOverloadError, match="at capacity"):
                service.plan(GOOD)
        finally:
            service._slots.release()
        assert service.stats().rejected_overload == 1
        # The slot was not leaked: the next request goes through.
        assert service.plan(GOOD)["ok"] is True

    def test_invalid_payload_does_not_consume_a_slot(self):
        service = PlannerService(max_inflight=1)
        with pytest.raises(ConfigurationError):
            service.plan({**GOOD, "machine": "cray-1"})
        assert service.plan(GOOD)["ok"] is True
        stats = service.stats()
        assert stats.rejected_invalid == 1 and stats.rejected_overload == 0

    def test_malformed_hammer_leaves_no_inflight(self):
        """Admission-slot leak regression: a burst of malformed bodies
        (rejected at every stage of validation) must leave the in-flight
        gauge at zero and every slot free for a real request."""
        service = PlannerService(max_inflight=2)
        malformed = [
            GOOD,  # not wrapped in a list: "must be a JSON array"
            [{**GOOD, "machine": "cray-1"}],
            [{**GOOD, "frobnicate": 1}],
            ["not an object"],
            [{k: v for k, v in GOOD.items() if k != "workload"}],
        ]
        for _ in range(10):
            for payload in malformed:
                with pytest.raises(ConfigurationError):
                    service.plan_batch(payload)
        assert service.stats_json()["inflight"] == 0
        # Both slots are free, not leaked one-per-failure.
        assert service._slots.acquire(blocking=False)
        assert service._slots.acquire(blocking=False)
        assert not service._slots.acquire(blocking=False)
        service._slots.release()
        service._slots.release()
        assert service.plan(GOOD)["ok"] is True

    def test_planner_crash_releases_slot_and_gauge(self, monkeypatch):
        """Even an unexpected exception *inside* planning (after the slot
        is held) returns the slot and the gauge on the way out."""
        service = PlannerService(max_inflight=1)

        def boom(requests, max_workers):
            assert service.stats_json()["inflight"] == 1  # gauge is live
            raise RuntimeError("planner crashed mid-batch")

        monkeypatch.setattr("repro.serve.service.plan_many", boom)
        with pytest.raises(RuntimeError, match="mid-batch"):
            service.plan_batch([GOOD])
        assert service.stats_json()["inflight"] == 0
        monkeypatch.undo()
        # The single slot survived the crash: a real request still runs.
        assert service.plan(GOOD)["ok"] is True
        assert service.stats_json()["inflight"] == 0

    def test_stats_counters_and_cache_block(self):
        service = PlannerService()
        service.plan(GOOD)
        service.plan_batch([GOOD, {**GOOD, "num_workers": 1}])
        stats = service.stats_json()
        assert stats["requests"] == 3
        assert stats["batches"] == 2
        assert stats["plan_errors"] == 1
        assert stats["busy_seconds"] > 0
        assert 0.0 <= stats["schedule_cache"]["hit_rate"] <= 1.0
        assert stats["disk_cache"]["entries"] >= 0
        json.dumps(stats)  # wire-ready

    def test_ctor_validation(self):
        with pytest.raises(ConfigurationError, match="max_inflight"):
            PlannerService(max_inflight=0)
        with pytest.raises(ConfigurationError, match="max_batch"):
            PlannerService(max_batch=0)


@pytest.fixture(scope="class")
def http_server():
    server = PlannerHTTPServer(("127.0.0.1", 0), PlannerService())
    thread = threading.Thread(target=server.serve_forever)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        assert not thread.is_alive()


def _post(url: str, body: bytes, headers: dict | None = None):
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


class TestHTTP:
    def test_healthz(self, http_server):
        assert _get(f"{http_server}/healthz") == (200, {"ok": True})

    def test_plan_endpoint(self, http_server):
        status, body = _post(
            f"{http_server}/plan", json.dumps(GOOD).encode()
        )
        assert status == 200 and body["ok"] is True
        assert body["entries"][0]["throughput"] > 0

    def test_plan_many_endpoint(self, http_server):
        status, body = _post(
            f"{http_server}/plan_many",
            json.dumps([GOOD, {**GOOD, "num_workers": 1}]).encode(),
        )
        assert status == 200
        assert [r["ok"] for r in body["results"]] == [True, False]

    def test_validation_maps_to_400(self, http_server):
        status, body = _post(
            f"{http_server}/plan",
            json.dumps({**GOOD, "machine": "cray-1"}).encode(),
        )
        assert status == 400
        assert "available machines" in body["error"]

    def test_bad_json_maps_to_400(self, http_server):
        status, body = _post(f"{http_server}/plan", b"{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_route_404(self, http_server):
        assert _get(f"{http_server}/nope")[0] == 404
        assert _post(f"{http_server}/nope", b"{}")[0] == 404

    def test_oversized_body_maps_to_413(self, http_server):
        from repro.serve.http import MAX_BODY_BYTES

        status, body = _post(
            f"{http_server}/plan",
            b"{}",
            headers={"Content-Length": str(MAX_BODY_BYTES + 1)},
        )
        assert status == 413

    def test_stats_endpoint(self, http_server):
        status, body = _get(f"{http_server}/stats")
        assert status == 200
        assert body["requests"] >= 1
        assert body["inflight"] == 0
        assert "schedule_cache" in body

    def test_malformed_hammer_keeps_inflight_zero(self, http_server):
        """Wire-level slot-leak regression: hammer /plan and /plan_many
        with malformed bodies, then confirm the admission gauge reads
        zero and the server still plans."""
        for _ in range(5):
            assert _post(f"{http_server}/plan", b"{not json")[0] == 400
            assert _post(
                f"{http_server}/plan",
                json.dumps({**GOOD, "machine": "cray-1"}).encode(),
            )[0] == 400
            assert _post(
                f"{http_server}/plan_many", json.dumps(GOOD).encode()
            )[0] == 400
        status, body = _get(f"{http_server}/stats")
        assert status == 200 and body["inflight"] == 0
        assert _post(f"{http_server}/plan", json.dumps(GOOD).encode())[0] == 200

    def test_overload_maps_to_503(self):
        # A dedicated single-slot server whose slot we hold ourselves.
        server = PlannerHTTPServer(
            ("127.0.0.1", 0), PlannerService(max_inflight=1)
        )
        thread = threading.Thread(target=server.serve_forever)
        thread.start()
        try:
            assert server.service._slots.acquire(blocking=False)
            host, p = server.server_address[:2]
            status, body = _post(
                f"http://{host}:{p}/plan", json.dumps(GOOD).encode()
            )
            assert status == 503
            assert "retry with backoff" in body["error"]
        finally:
            server.service._slots.release()
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()


def _burst(service: PlannerService, payloads: list) -> list:
    """Fire one thread per payload at ``service.plan``; returns results
    (response dicts or the raised exception, index-aligned)."""
    results: list = [None] * len(payloads)
    barrier = threading.Barrier(len(payloads))

    def client(i: int) -> None:
        barrier.wait()
        try:
            results[i] = service.plan(payloads[i])
        except BaseException as err:  # noqa: BLE001 - asserted by callers
            results[i] = err

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(len(payloads))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


class TestCoalescing:
    def test_burst_merges_into_fewer_dispatches(self):
        """The acceptance criterion: K concurrent single /plan calls run
        in < K plan_many dispatches, every caller gets its own result."""
        with PlannerService(coalesce_ms=80.0) as service:
            payloads = [dict(GOOD, top_k=1 + i % 3) for i in range(6)]
            results = _burst(service, payloads)
            assert all(isinstance(r, dict) and r["ok"] for r in results)
            # Fan-out respects per-request identity, not batch position.
            for payload, result in zip(payloads, results):
                assert len(result["entries"]) == payload["top_k"]
            stats = service.stats_json()
            co = stats["coalesce"]
            assert co["batches"] < len(payloads)
            assert co["coalesced_requests"] > 0
            assert co["enqueued"] == co["dispatched"] == len(payloads)
            assert co["queue_depth"] == 0
            assert stats["inflight"] == 0

    def test_invalid_payload_rejected_before_the_queue(self):
        with PlannerService(coalesce_ms=50.0) as service:
            with pytest.raises(ConfigurationError, match="available machines"):
                service.plan({**GOOD, "machine": "cray-1"})
            stats = service.stats_json()
            assert stats["rejected_invalid"] == 1
            assert stats["coalesce"]["enqueued"] == 0

    def test_coalesced_plan_errors_fan_out_per_request(self):
        with PlannerService(coalesce_ms=80.0) as service:
            payloads = [GOOD, {**GOOD, "num_workers": 1}, GOOD]
            results = _burst(service, payloads)
            assert [r["ok"] for r in results] == [True, False, True]
            assert "at least two workers" in results[1]["error"]
            assert service.stats_json()["plan_errors"] == 1

    def test_close_drains_queued_requests(self):
        """A window far longer than the test: close() must dispatch the
        queued burst immediately (drain = finish, not cancel) rather than
        waiting out the window or dropping futures."""
        service = PlannerService(coalesce_ms=60_000.0)
        results: list = []
        started = threading.Event()

        def client() -> None:
            started.set()
            results.append(service.plan(GOOD))

        thread = threading.Thread(target=client)
        thread.start()
        started.wait(timeout=10)
        # Wait until the request is actually queued in the coalescer.
        deadline = time.monotonic() + 10
        while service._coalescer.stats().queue_depth == 0:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.close()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert results and results[0]["ok"]
        assert service.stats_json()["inflight"] == 0
        with pytest.raises(ServiceOverloadError, match="draining"):
            service.plan(GOOD)

    def test_stats_grow_uptime_and_batch_percentiles(self):
        service = PlannerService()
        service.plan(GOOD)
        stats = service.stats_json()
        assert stats["uptime_s"] > 0
        assert stats["batch_p99_ms"] >= stats["batch_p50_ms"] > 0
        # busy_seconds measures demand, not duty cycle: bounded by
        # uptime only when batches never overlap (as here).
        assert stats["busy_seconds"] <= stats["uptime_s"]
        json.dumps(stats)
        service.close()

    def test_ctor_validation(self):
        with pytest.raises(ConfigurationError, match="workers"):
            PlannerService(workers=-1)
        with pytest.raises(ConfigurationError, match="coalesce_ms"):
            PlannerService(coalesce_ms=-0.5)


class TestMultiprocessService:
    """One worker process end to end through the service layer."""

    @pytest.fixture(scope="class")
    def mp_service(self):
        with PlannerService(workers=1, coalesce_ms=50.0) as service:
            yield service

    def test_pooled_plan_matches_in_process(self, mp_service):
        response = mp_service.plan(GOOD)
        assert response["ok"] is True
        reference = plan_configurations(
            PIZ_DAINT, BERT48, num_workers=4, mini_batch=16,
            schemes=("chimera", "dapple"),
        )
        assert len(response["entries"]) == len(reference)
        top, want = response["entries"][0], reference[0]
        assert top["throughput"] == want.throughput
        assert top["iteration_time"] == want.iteration_time

    def test_workers_stats_block(self, mp_service):
        mp_service.plan_batch([GOOD])
        stats = mp_service.stats_json()
        wp = stats["workers"]
        assert wp["configured"] == 1
        assert wp["alive"] == 1
        assert len(wp["pids"]) == 1
        assert wp["pending"] == 0
        assert wp["completed"] >= 1

    def test_plan_errors_cross_the_process_boundary(self, mp_service):
        response = mp_service.plan_batch([{**GOOD, "num_workers": 1}])
        [result] = response["results"]
        assert result["ok"] is False
        assert "at least two workers" in result["error"]


class TestGracefulDrainUnderLoad:
    def test_close_with_requests_queued_and_in_flight(self):
        """The satellite scenario: requests queued in the coalescer AND
        in flight in the worker pool when close() lands. Every future
        resolves, the pool joins (no orphan processes), inflight ends 0."""
        import os

        service = PlannerService(workers=1, coalesce_ms=150.0)
        pool_pids = service._pool.pids()
        payloads = [dict(GOOD, top_k=1 + i % 4) for i in range(5)]
        results: list = [None] * len(payloads)
        launched = threading.Barrier(len(payloads) + 1)

        def client(i: int) -> None:
            launched.wait()
            results[i] = service.plan(payloads[i])

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(payloads))
        ]
        for t in threads:
            t.start()
        launched.wait()
        # Close while the burst is still inside the coalescing window —
        # exactly what the SIGTERM handler does via serve_forever.
        deadline = time.monotonic() + 10
        while service._coalescer.stats().queue_depth == 0:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        service.close()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive()
        assert all(isinstance(r, dict) and r["ok"] for r in results)
        stats = service.stats_json()
        assert stats["inflight"] == 0
        assert stats["coalesce"]["queue_depth"] == 0
        assert stats["workers"]["alive"] == 0
        assert stats["workers"]["pending"] == 0
        for pid in pool_pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_sigterm_drains_real_server_with_pool(self, tmp_path):
        """End to end over a socket: ``repro serve --workers 1
        --coalesce-ms 100`` gets a concurrent burst, SIGTERM lands while
        it is in flight, every client still receives its full response,
        and the server exits 0 with no orphaned worker process."""
        import os
        import pathlib
        import signal
        import subprocess
        import sys

        repo = pathlib.Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro", "serve",
                "--host", "127.0.0.1", "--port", "0",
                "--workers", "1", "--coalesce-ms", "100",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
            cwd=repo,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            base = banner.strip().rsplit(" ", 1)[-1]
            deadline = time.monotonic() + 60
            while True:
                try:
                    if _get(f"{base}/healthz") == (200, {"ok": True}):
                        break
                except OSError:
                    pass
                assert time.monotonic() < deadline, "server never came up"
                time.sleep(0.1)

            responses: list = [None] * 4

            def client(i: int) -> None:
                responses[i] = _post(
                    f"{base}/plan", json.dumps(dict(GOOD, top_k=1 + i)).encode()
                )

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            time.sleep(0.03)  # inside the 100 ms coalescing window
            proc.send_signal(signal.SIGTERM)
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive()
            for i, (status, body) in enumerate(responses):
                assert status == 200, body
                assert body["ok"] is True
                assert len(body["entries"]) == 1 + i
            assert proc.wait(timeout=120) == 0
            assert "drained, bye" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
