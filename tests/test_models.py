"""NumPy model layers: gradient checks against finite differences."""

import numpy as np
import pytest

from repro.models import functional as Fn
from repro.models.attention import CausalSelfAttention
from repro.models.layers import GELU, Embedding, LayerNorm, Linear, Sequential
from repro.models.loss import softmax_cross_entropy
from repro.models.transformer import (
    LMHead,
    TransformerBlock,
    TransformerLMConfig,
    build_transformer_layers,
    partition_layers,
)
from tests.conftest import numeric_grad

RNG = np.random.default_rng(42)


def check_input_grad(layer, x, atol=1e-6):
    """Backward dx must match the finite-difference gradient of sum(y)."""
    y, cache = layer.forward(x)
    dy = np.ones_like(y)
    layer.zero_grads()
    dx = layer.backward(dy, cache)

    def loss():
        out, _ = layer.forward(x)
        return float(out.sum())

    expected = numeric_grad(loss, x)
    np.testing.assert_allclose(dx, expected, atol=atol)


def check_param_grads(layer, x, atol=1e-5):
    y, cache = layer.forward(x)
    layer.zero_grads()
    layer.backward(np.ones_like(y), cache)
    for name, param in layer.params.items():
        def loss():
            out, _ = layer.forward(x)
            return float(out.sum())

        expected = numeric_grad(loss, param)
        np.testing.assert_allclose(
            layer.grads[name], expected, atol=atol, err_msg=name
        )


class TestFunctional:
    def test_gelu_matches_reference_points(self):
        y, _ = Fn.gelu(np.array([0.0]))
        assert y[0] == pytest.approx(0.0)
        y, _ = Fn.gelu(np.array([10.0]))
        assert y[0] == pytest.approx(10.0, rel=1e-4)

    def test_gelu_gradient(self):
        x = RNG.standard_normal(7)
        _, cache = Fn.gelu(x)
        dx = Fn.gelu_backward(np.ones(7), cache)

        def loss():
            return float(Fn.gelu(x)[0].sum())

        np.testing.assert_allclose(dx, numeric_grad(loss, x), atol=1e-6)

    def test_softmax_rows_sum_to_one(self):
        y = Fn.softmax(RNG.standard_normal((3, 9)))
        np.testing.assert_allclose(y.sum(axis=-1), 1.0)

    def test_softmax_shift_invariance(self):
        x = RNG.standard_normal((2, 5))
        np.testing.assert_allclose(Fn.softmax(x), Fn.softmax(x + 1000.0))

    def test_layernorm_normalizes(self):
        x = RNG.standard_normal((4, 8)) * 5 + 3
        y, _ = Fn.layernorm(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y.mean(-1), 0.0, atol=1e-12)
        np.testing.assert_allclose(y.var(-1), 1.0, atol=1e-4)


class TestLayers:
    def test_linear_input_grad(self):
        check_input_grad(Linear(5, 3, rng=RNG), RNG.standard_normal((2, 4, 5)))

    def test_linear_param_grads(self):
        check_param_grads(Linear(4, 3, rng=RNG), RNG.standard_normal((2, 3, 4)))

    def test_layernorm_grads(self):
        layer = LayerNorm(6)
        x = RNG.standard_normal((2, 3, 6))
        check_input_grad(layer, x, atol=1e-5)
        check_param_grads(layer, x)

    def test_gelu_layer_grad(self):
        check_input_grad(GELU(), RNG.standard_normal((2, 3, 4)))

    def test_embedding_param_grads(self):
        layer = Embedding(11, 6, 4, rng=RNG)
        tokens = RNG.integers(0, 11, (2, 5))
        y, cache = layer.forward(tokens)
        layer.zero_grads()
        layer.backward(np.ones_like(y), cache)

        def loss():
            out, _ = layer.forward(tokens)
            return float(out.sum())

        for name in ("tok", "pos"):
            expected = numeric_grad(loss, layer.params[name])
            np.testing.assert_allclose(layer.grads[name], expected, atol=1e-5)

    def test_sequential_composition(self):
        seq = Sequential([Linear(4, 4, rng=RNG), GELU(), Linear(4, 2, rng=RNG)])
        check_input_grad(seq, RNG.standard_normal((3, 4)))
        assert len(seq.params) == 4  # two Linears x (W, b)

    def test_attention_input_grad(self):
        layer = CausalSelfAttention(8, 2, rng=RNG)
        check_input_grad(layer, RNG.standard_normal((2, 4, 8)), atol=1e-5)

    def test_attention_param_grads(self):
        layer = CausalSelfAttention(4, 2, rng=RNG)
        check_param_grads(layer, RNG.standard_normal((1, 3, 4)), atol=1e-5)

    def test_attention_is_causal(self):
        """Changing a later token must not affect earlier outputs."""
        layer = CausalSelfAttention(8, 2, rng=RNG)
        x = RNG.standard_normal((1, 5, 8))
        y1, _ = layer.forward(x)
        x2 = x.copy()
        x2[0, 4] += 10.0
        y2, _ = layer.forward(x2)
        np.testing.assert_allclose(y1[0, :4], y2[0, :4])

    def test_attention_dim_heads_mismatch(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(7, 2, rng=RNG)

    def test_block_grads(self):
        block = TransformerBlock(8, 2, rng=RNG)
        check_input_grad(block, RNG.standard_normal((1, 3, 8)), atol=1e-5)

    def test_lmhead_grads(self):
        head = LMHead(6, 9, rng=RNG)
        check_input_grad(head, RNG.standard_normal((1, 3, 6)), atol=1e-5)

    def test_row_sliced_backward_composes(self):
        """Backward over two row halves must equal one full backward."""
        layer = Linear(5, 4, rng=RNG)
        x = RNG.standard_normal((4, 5))
        y, cache = layer.forward(x)
        dy = RNG.standard_normal(y.shape)

        layer.zero_grads()
        full_dx = layer.backward(dy, cache)
        full_grads = {k: v.copy() for k, v in layer.grads.items()}

        layer.zero_grads()
        dx0 = layer.backward(dy[:2], cache, row_slice=slice(0, 2))
        dx1 = layer.backward(dy[2:], cache, row_slice=slice(2, 4))
        np.testing.assert_allclose(np.concatenate([dx0, dx1]), full_dx)
        for k in full_grads:
            np.testing.assert_allclose(layer.grads[k], full_grads[k], atol=1e-12)


class TestLoss:
    def test_matches_numeric_gradient(self):
        logits = RNG.standard_normal((2, 3, 7))
        targets = RNG.integers(0, 7, (2, 3))
        _, dlogits = softmax_cross_entropy(logits, targets)

        def loss():
            value, _ = softmax_cross_entropy(logits, targets)
            return value

        np.testing.assert_allclose(
            dlogits, numeric_grad(loss, logits), atol=1e-6
        )

    def test_perfect_prediction_low_loss(self):
        targets = np.array([[1, 2]])
        logits = np.full((1, 2, 4), -100.0)
        logits[0, 0, 1] = 100.0
        logits[0, 1, 2] = 100.0
        loss, _ = softmax_cross_entropy(logits, targets)
        assert loss < 1e-6

    def test_uniform_logits_log_vocab(self):
        loss, _ = softmax_cross_entropy(
            np.zeros((2, 3, 8)), RNG.integers(0, 8, (2, 3))
        )
        assert loss == pytest.approx(np.log(8))


class TestAssembly:
    def test_build_layers_deterministic(self):
        cfg = TransformerLMConfig(num_layers=2, dim=8, heads=2, vocab=11, seq=4)
        a = build_transformer_layers(cfg)
        b = build_transformer_layers(cfg)
        for la, lb in zip(a, b):
            for k in la.params:
                np.testing.assert_array_equal(la.params[k], lb.params[k])

    def test_partition_embedding_first_head_last(self):
        cfg = TransformerLMConfig(num_layers=4, dim=8, heads=2, vocab=11, seq=4)
        stages = partition_layers(build_transformer_layers(cfg), 4)
        assert isinstance(stages[0][0], Embedding)
        assert isinstance(stages[-1][-1], LMHead)
        assert [len(s) for s in stages] == [2, 1, 1, 2]

    def test_partition_uneven_rejected(self):
        cfg = TransformerLMConfig(num_layers=3, dim=8, heads=2, vocab=11, seq=4)
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            partition_layers(build_transformer_layers(cfg), 2)

    def test_partition_depth_one(self):
        cfg = TransformerLMConfig(num_layers=2, dim=8, heads=2, vocab=11, seq=4)
        layers = build_transformer_layers(cfg)
        assert partition_layers(layers, 1) == [layers]
