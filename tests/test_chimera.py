"""Chimera schedule construction — the paper's §3 claims, mechanically."""

from dataclasses import replace

import pytest

from repro.common.errors import ScheduleError
from repro.schedules.ir import freeze_worker_ops
from repro.schedules.registry import build_schedule
from repro.schedules.chimera import (
    build_chimera_schedule,
    partition_micro_batches,
)
from repro.schedules.validate import validate_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio


def practical_makespan(depth, n):
    """3N + 2(D-2) forward units — the Figure 3 (bottom) makespan."""
    return 3 * n + 2 * (depth - 2)


class TestPartition:
    def test_even_split(self):
        assert partition_micro_batches(4, 2) == [[0, 1], [2, 3]]

    def test_uneven_split_front_loaded(self):
        assert partition_micro_batches(5, 2) == [[0, 1, 2], [3, 4]]

    def test_single_micro_batch(self):
        assert partition_micro_batches(1, 2) == [[0], []]

    def test_zero_rejected(self):
        with pytest.raises(ScheduleError):
            partition_micro_batches(0, 2)


class TestBasicUnit:
    @pytest.mark.parametrize("depth", [2, 4, 6, 8, 16, 32])
    def test_practical_makespan_formula(self, depth):
        """The merged N=D schedule hits 3N + 2(D-2) exactly (paper §2)."""
        schedule = build_chimera_schedule(depth, depth)
        result = simulate(schedule, CostModel.practical())
        assert result.compute_makespan == pytest.approx(
            practical_makespan(depth, depth)
        )

    @pytest.mark.parametrize("depth", [4, 8, 16])
    def test_unit_slot_makespan_formula(self, depth):
        """Equal-slot merge: 2N + D - 2 (Figure 3 top)."""
        schedule = build_chimera_schedule(depth, depth, slot_model="unit")
        result = simulate(schedule, CostModel.unit())
        assert result.compute_makespan == pytest.approx(3 * depth - 2)

    def test_figure3_worker_orders(self):
        """D=4, N=4: the merged per-worker orders of Figure 3."""
        schedule = build_chimera_schedule(4, 4)
        compute = [
            [op.short() for op in schedule.ops_on(w) if op.is_compute]
            for w in range(4)
        ]
        assert compute[0] == ["F0", "F1", "F2", "B2", "F3", "B3", "B0", "B1"]
        assert compute[3] == ["F2", "F3", "F0", "B0", "F1", "B1", "B2", "B3"]

    @pytest.mark.parametrize("depth,n", [(4, 4), (8, 8), (16, 16)])
    def test_bubble_ratio_practical(self, depth, n):
        """(D-2) / (3N/2 + D - 2) — Table 2's practical Chimera row."""
        schedule = build_chimera_schedule(depth, n)
        result = simulate(schedule, CostModel.practical())
        expected = (depth - 2) / (1.5 * n + depth - 2)
        assert bubble_ratio(result) == pytest.approx(expected)

    def test_odd_depth_rejected(self):
        with pytest.raises(ScheduleError):
            build_chimera_schedule(5, 5)

    def test_validates_with_sync(self):
        validate_schedule(build_chimera_schedule(8, 8), require_sync_ops=True)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7])
    def test_underfilled_pipeline_valid(self, n):
        """N < D: micro-batches split as evenly as possible (§3.1)."""
        schedule = build_chimera_schedule(8, n)
        validate_schedule(schedule, require_sync_ops=True)

    def test_single_micro_batch_runs_on_down_pipeline(self):
        schedule = build_chimera_schedule(4, 1)
        assert schedule.micro_batches_of_replica(0) == (0,)
        assert schedule.micro_batches_of_replica(1) == ()


class TestActivationBalance:
    """Table 2: Chimera activations in [(D/2 + 1) Ma, D Ma], symmetric."""

    @pytest.mark.parametrize("depth", [4, 8, 16])
    def test_bounds(self, depth):
        schedule = build_chimera_schedule(depth, depth)
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        assert min(units) == depth / 2 + 1
        assert max(units) == depth

    def test_symmetry(self):
        schedule = build_chimera_schedule(8, 8)
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        assert units == units[::-1]

    def test_edge_workers_are_lightest(self):
        schedule = build_chimera_schedule(8, 8)
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        assert units[0] == min(units) and units[-1] == min(units)


class TestConcatenation:
    @pytest.mark.parametrize("depth,k", [(4, 2), (4, 4), (8, 2), (8, 3), (16, 2)])
    def test_direct_bubble_law(self, depth, k):
        """Direct concatenation keeps intermediate bubbles (paper §3.5 /
        Figure 7b). Our list scheduler follows the empirical law
        ``2(D-2) + (D-3)(K-1)`` forward-units — sub-linear in total work,
        so the ratio still vanishes as N grows."""
        n = depth * k
        schedule = build_chimera_schedule(depth, n, concat="direct")
        result = simulate(schedule, CostModel.practical())
        bubbles = result.compute_makespan - 3 * n
        assert bubbles == pytest.approx(2 * (depth - 2) + (depth - 3) * (k - 1))

    @pytest.mark.parametrize("depth", [4, 8])
    def test_halving_bubbles_constant_in_n(self, depth):
        """Backward halving removes the intermediate bubbles: the total
        stays constant (~D-2, paper §3.5) no matter how many units chain."""
        bubbles = []
        for k in (2, 4, 6):
            n = depth * k
            schedule = build_chimera_schedule(depth, n, concat="halving")
            result = simulate(schedule, CostModel.practical())
            bubbles.append(result.compute_makespan - 3 * n)
        assert bubbles[0] == bubbles[1] == bubbles[2]
        assert depth - 2 <= bubbles[0] <= depth

    def test_halving_beats_direct_at_large_n(self):
        cost = CostModel.practical()
        n = 32
        direct = simulate(build_chimera_schedule(8, n, concat="direct"), cost)
        halving = simulate(build_chimera_schedule(8, n, concat="halving"), cost)
        assert halving.compute_makespan < direct.compute_makespan

    @pytest.mark.parametrize("depth,k", [(4, 2), (8, 2)])
    def test_doubling_beats_direct_under_recompute(self, depth, k):
        """When recomputation is mandatory anyway (Figure 18's regime),
        forward doubling outperforms direct concatenation — under the
        paper's model, where rematerialization inflates the backward on
        the critical path (B = 3F, the legacy flag representation). The
        explicit recompute pass instead prefetches rematerialization
        into bubbles and closes the gap from the other side."""
        n = depth * k
        cost = CostModel.practical()
        direct = build_chimera_schedule(depth, n, concat="direct")
        flagged = replace(
            direct,
            worker_ops=freeze_worker_ops(
                [
                    [op.with_recompute() if op.is_backward else op for op in ops]
                    for ops in direct.worker_ops
                ]
            ),
        )
        flag_time = simulate(flagged, cost).compute_makespan
        doubling = simulate(
            build_chimera_schedule(depth, n, concat="doubling"), cost
        ).compute_makespan
        assert doubling < flag_time
        prefetched = simulate(
            build_schedule("chimera", depth, n, concat="direct", recompute=True),
            cost,
        ).compute_makespan
        assert prefetched <= doubling

    def test_doubling_direct_same_without_recompute_tax(self):
        """On Bert-48-like workloads (no recompute needed), direct avoids
        the doubling recompute tax (Figure 17's regime)."""
        cost = CostModel.practical()
        direct = simulate(build_chimera_schedule(4, 8, concat="direct"), cost)
        doubling = simulate(build_chimera_schedule(4, 8, concat="doubling"), cost)
        assert direct.compute_makespan < doubling.compute_makespan

    def test_doubling_memory_doubles(self):
        model = MemoryModel(activation_bytes=1.0, stash_input_bytes=0.25)
        base = analyze_memory(build_chimera_schedule(4, 8, concat="direct"), model)
        doubled = analyze_memory(
            build_chimera_schedule(4, 8, concat="doubling"), model
        )
        base_units = max(w.activation_peak_units for w in base.workers)
        doubled_units = max(w.activation_peak_units for w in doubled.workers)
        assert doubled_units > base_units

    @pytest.mark.parametrize("concat", ["direct", "doubling", "halving"])
    def test_all_strategies_validate(self, concat):
        for depth, n in ((4, 8), (4, 12), (8, 24)):
            schedule = build_chimera_schedule(depth, n, concat=concat)
            validate_schedule(schedule, require_sync_ops=True)

    def test_odd_residual_doubling(self):
        schedule = build_chimera_schedule(4, 10, concat="doubling")
        validate_schedule(schedule, require_sync_ops=True)

    @pytest.mark.parametrize("n", [32, 64])
    def test_deep_doubling_chains_do_not_stall(self, n):
        """Regression: D=4 forward doubling with 8+ units used to wedge in
        a cap-wait cycle; the merge's stall recovery must resolve it."""
        schedule = build_chimera_schedule(4, n, concat="doubling")
        validate_schedule(schedule, require_sync_ops=True)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ScheduleError):
            build_chimera_schedule(4, 8, concat="tripling")

    def test_concat_ignored_when_n_le_d(self):
        schedule = build_chimera_schedule(8, 8, concat="doubling")
        assert schedule.metadata["concat"] == "direct"


class TestGeneralizedPipelines:
    @pytest.mark.parametrize("depth,f", [(8, 2), (16, 2), (16, 4), (8, 4)])
    def test_table3_bubble_formula(self, depth, f):
        schedule = build_chimera_schedule(
            depth, depth, num_down_pipelines=f, slot_model="unit"
        )
        result = simulate(schedule, CostModel.unit())
        expected = (depth - 2 * f) / (2 * f * depth + depth - 2 * f)
        assert bubble_ratio(result) == pytest.approx(expected)

    @pytest.mark.parametrize("depth,f", [(8, 2), (16, 4)])
    def test_table3_activation_lower_bound(self, depth, f):
        schedule = build_chimera_schedule(
            depth, depth, num_down_pipelines=f, slot_model="unit"
        )
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        assert min(units) == depth - depth / (2 * f) + 1
        assert max(units) <= depth

    def test_f_equals_q_no_bubbles(self):
        """f = Q = D/2 degrades to (pipelined) pure data parallelism."""
        depth = 8
        schedule = build_chimera_schedule(
            depth, depth, num_down_pipelines=depth // 2, slot_model="unit"
        )
        result = simulate(schedule, CostModel.unit())
        assert bubble_ratio(result) == pytest.approx(0.0)

    def test_weights_memory_2f(self):
        schedule = build_chimera_schedule(8, 8, num_down_pipelines=2)
        report = analyze_memory(
            schedule, MemoryModel(activation_bytes=0.0, weight_bytes=1.0)
        )
        assert all(w.weight_bytes == 4.0 for w in report.workers)

    def test_invalid_f_rejected(self):
        with pytest.raises(ScheduleError):
            build_chimera_schedule(8, 8, num_down_pipelines=3)


class TestSyncModes:
    def test_eager_opt_skips_middle_stages_d4(self):
        """Paper §3.2: P0/P3 sync stage 3 eagerly; P1/P2 sync lazily."""
        schedule = build_chimera_schedule(4, 4, sync_mode="eager_opt")
        # P0: eager allreduce for the up replica's stage 3 sits before the
        # last compute ops.
        p0 = [op.short() for op in schedule.ops_on(0)]
        assert p0.index("S3r1") < p0.index("B0")
        # P1: both allreduces trail all compute.
        p1_kinds = [op.kind.value for op in schedule.ops_on(1)]
        assert p1_kinds[-2:] == ["S", "S"]

    def test_eager_places_all_after_last_backward(self):
        schedule = build_chimera_schedule(4, 4, sync_mode="eager")
        for worker in range(4):
            ops = schedule.ops_on(worker)
            for i, op in enumerate(ops):
                if op.kind.value != "S":
                    continue
                later_bwd = [
                    o
                    for o in ops[i + 1 :]
                    if o.is_backward and o.replica == op.replica and o.stage == op.stage
                ]
                assert not later_bwd

    def test_lazy_appends_all_syncs(self):
        schedule = build_chimera_schedule(4, 4, sync_mode="lazy")
        for worker in range(4):
            kinds = [op.kind.value for op in schedule.ops_on(worker)]
            assert kinds[-2:] == ["S", "S"]

    def test_unknown_sync_mode_rejected(self):
        with pytest.raises(ScheduleError):
            build_chimera_schedule(4, 4, sync_mode="psychic")

    def test_unknown_slot_model_rejected(self):
        with pytest.raises(ScheduleError):
            build_chimera_schedule(4, 4, slot_model="quantum")
