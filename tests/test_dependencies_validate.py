"""Dependency extraction and structural validation."""

import pytest

from repro.common.errors import ValidationError
from repro.schedules.dependencies import EdgeKind, build_dependency_graph
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement
from repro.schedules.registry import available_schemes, build_schedule
from repro.schedules.validate import validate_schedule


def F(mb, stage, replica=0):
    return Operation(OpKind.FORWARD, replica, stage, micro_batches=(mb,))


def B(mb, stage, replica=0, part=(0, 1)):
    return Operation(OpKind.BACKWARD, replica, stage, micro_batches=(mb,), part=part)


def toy(rows, depth=2, n=1):
    return Schedule(
        scheme="toy",
        placement=StagePlacement.linear(depth),
        num_micro_batches=n,
        worker_ops=freeze_worker_ops(rows),
    )


class TestDependencyGraph:
    def test_forward_chain_edges(self):
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1), B(0, 1)]])
        g = build_dependency_graph(s)
        deps = {e.kind for e in g.deps[F(0, 1).key()]}
        assert deps == {EdgeKind.ACTIVATION}

    def test_backward_needs_gradient_and_stash(self):
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1), B(0, 1)]])
        g = build_dependency_graph(s)
        kinds = sorted(e.kind.value for e in g.deps[B(0, 0).key()])
        assert kinds == ["gradient", "stash"]

    def test_last_stage_backward_needs_only_stash(self):
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1), B(0, 1)]])
        g = build_dependency_graph(s)
        kinds = [e.kind for e in g.deps[B(0, 1).key()]]
        assert kinds == [EdgeKind.STASH]

    def test_p2p_edges_cross_workers_only(self):
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1), B(0, 1)]])
        g = build_dependency_graph(s)
        p2p = list(g.p2p_edges())
        assert len(p2p) == 2  # one activation, one gradient

    def test_allreduce_depends_on_local_backwards(self):
        sched = build_schedule("chimera", 4, 4)
        g = build_dependency_graph(sched)
        for worker, op in sched.all_ops():
            if op.kind is OpKind.ALLREDUCE:
                incoming = g.deps[op.key()]
                assert incoming, f"allreduce {op.short()} has no producers"
                assert all(e.kind is EdgeKind.SYNC for e in incoming)

    def test_missing_forward_producer_raises(self):
        # Stage-1 forward exists but stage-0 forward is missing entirely.
        s = toy([[], [F(0, 1), B(0, 1)]])
        with pytest.raises(ValidationError, match="no stage-0 producer"):
            build_dependency_graph(s)

    def test_duplicate_op_raises(self):
        s = toy([[F(0, 0), F(0, 0)], []])
        with pytest.raises(ValidationError):
            build_dependency_graph(s)

    def test_part_splits_resolve_per_part(self):
        rows = [
            [F(0, 0), B(0, 0, part=(0, 2)), B(0, 0, part=(1, 2))],
            [F(0, 1), B(0, 1, part=(0, 2)), B(0, 1, part=(1, 2))],
        ]
        g = build_dependency_graph(toy(rows))
        edge_kinds = [e.kind for e in g.deps[B(0, 0, part=(1, 2)).key()]]
        assert EdgeKind.GRADIENT in edge_kinds


class TestValidator:
    @pytest.mark.parametrize("scheme", available_schemes())
    def test_all_builders_produce_valid_schedules(self, scheme):
        schedule = build_schedule(scheme, 4, 8)
        validate_schedule(schedule, require_sync_ops=(scheme != "pipedream"))

    def test_missing_backward_detected(self):
        # The dependency builder already catches the missing gradient
        # producer for the upstream backward.
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1)]])
        with pytest.raises(ValidationError, match="gradient producer"):
            validate_schedule(s)

    def test_missing_final_backward_detected(self):
        s = toy([[F(0, 0)], [F(0, 1)]])
        with pytest.raises(ValidationError, match="no backward"):
            validate_schedule(s)

    def test_missing_micro_batch_detected(self):
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1), B(0, 1)]], n=2)
        with pytest.raises(ValidationError, match="never enter"):
            validate_schedule(s)

    def test_wrong_worker_detected(self):
        rows = [[F(0, 1), B(0, 1)], [F(0, 0), B(0, 0)]]
        with pytest.raises(ValidationError, match="placed on worker"):
            validate_schedule(toy(rows))

    def test_incomplete_backward_parts_detected(self):
        rows = [
            [F(0, 0), B(0, 0, part=(0, 2))],
            [F(0, 1), B(0, 1, part=(0, 2)), B(0, 1, part=(1, 2))],
        ]
        with pytest.raises(ValidationError, match="parts"):
            validate_schedule(toy(rows))

    def test_deadlock_detected(self):
        # Worker 1 runs the backward before its own forward is even
        # possible: B(0,1) needs F(0,1) which is ordered after it.
        rows = [
            [F(0, 0), B(0, 0)],
            [B(0, 1), F(0, 1)],
        ]
        with pytest.raises(ValidationError, match="cycle|deadlock"):
            validate_schedule(toy(rows))

    def test_sync_coverage_enforced(self):
        s = toy([[F(0, 0), B(0, 0)], [F(0, 1), B(0, 1)]])
        with pytest.raises(ValidationError, match="synchronization"):
            validate_schedule(s, require_sync_ops=True)
