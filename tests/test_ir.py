"""Schedule IR: operation identity, work units, schedule views."""

import pytest

from repro.common.errors import ScheduleError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement


def F(mb, stage=0, replica=0, **kw):
    return Operation(OpKind.FORWARD, replica, stage, micro_batches=(mb,), **kw)


def B(mb, stage=0, replica=0, **kw):
    return Operation(OpKind.BACKWARD, replica, stage, micro_batches=(mb,), **kw)


class TestOperation:
    def test_work_units_single(self):
        assert F(0).work_units == 1.0

    def test_work_units_chunk(self):
        op = Operation(OpKind.FORWARD, 0, 0, micro_batches=(0, 1))
        assert op.work_units == 2.0

    def test_work_units_half(self):
        op = Operation(OpKind.BACKWARD, 0, 0, micro_batches=(0,), part=(1, 2))
        assert op.work_units == 0.5

    def test_allreduce_work_units_zero(self):
        assert Operation(OpKind.ALLREDUCE, 0, 2).work_units == 0.0

    def test_key_distinguishes_parts(self):
        a = Operation(OpKind.BACKWARD, 0, 0, micro_batches=(0,), part=(0, 2))
        b = Operation(OpKind.BACKWARD, 0, 0, micro_batches=(0,), part=(1, 2))
        assert a.key() != b.key()

    def test_negative_stage_rejected(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.FORWARD, 0, -1, micro_batches=(0,))

    def test_compute_op_needs_micro_batches(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.FORWARD, 0, 0)

    def test_duplicate_micro_batches_rejected(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.FORWARD, 0, 0, micro_batches=(1, 1))

    def test_invalid_part_rejected(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.BACKWARD, 0, 0, micro_batches=(0,), part=(2, 2))

    def test_short_rendering(self):
        assert F(3).short() == "F3"
        assert B(3).short() == "B3"
        half = Operation(OpKind.BACKWARD, 0, 0, micro_batches=(1,), part=(1, 2))
        assert half.short() == "B1.1/2"
        assert Operation(OpKind.ALLREDUCE, 1, 2).short() == "S2r1"

    def test_with_recompute(self):
        op = B(0)
        assert not op.recompute
        assert op.with_recompute().recompute


class TestSchedule:
    def _schedule(self):
        placement = StagePlacement.linear(2)
        rows = [
            [F(0, 0), B(0, 0)],
            [F(0, 1), B(0, 1)],
        ]
        return Schedule(
            scheme="toy",
            placement=placement,
            num_micro_batches=1,
            worker_ops=freeze_worker_ops(rows),
        )

    def test_views(self):
        s = self._schedule()
        assert s.num_stages == 2
        assert s.num_workers == 2
        assert s.num_replicas == 1
        assert s.count(OpKind.FORWARD) == 2
        assert s.count(OpKind.BACKWARD) == 2
        assert s.work_units_on(0) == 2.0

    def test_micro_batches_of_replica(self):
        assert self._schedule().micro_batches_of_replica(0) == (0,)

    def test_worker_count_mismatch_rejected(self):
        placement = StagePlacement.linear(2)
        with pytest.raises(ScheduleError):
            Schedule(
                scheme="bad",
                placement=placement,
                num_micro_batches=1,
                worker_ops=((),),
            )

    def test_zero_micro_batches_rejected(self):
        placement = StagePlacement.linear(1)
        with pytest.raises(ScheduleError):
            Schedule(
                scheme="bad",
                placement=placement,
                num_micro_batches=0,
                worker_ops=((),),
            )

    def test_with_metadata_merges(self):
        s = self._schedule().with_metadata(alpha=1)
        s2 = s.with_metadata(beta=2)
        assert s2.metadata["alpha"] == 1 and s2.metadata["beta"] == 2

    def test_describe_mentions_scheme_and_shape(self):
        text = self._schedule().describe()
        assert "toy" in text and "D=2" in text and "N=1" in text
