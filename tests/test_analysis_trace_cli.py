"""Closed-form analysis module, trace export, and the CLI."""

import json

import pytest

from repro.common.errors import ConfigurationError
from repro.cli import main as cli_main
from repro.schedules.analysis import (
    activation_interval_formula,
    bubble_ratio_formula,
    scheme_properties,
    weight_copies_formula,
)
from repro.schedules.registry import available_schemes, build_schedule, scheme_traits
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio
from repro.sim.trace import to_chrome_trace, write_chrome_trace


class TestAnalysisFormulas:
    @pytest.mark.parametrize("scheme", ["gpipe", "dapple", "chimera"])
    @pytest.mark.parametrize("depth,n", [(4, 4), (8, 8), (8, 16)])
    def test_bubble_formula_matches_simulation(self, scheme, depth, n):
        if scheme == "chimera" and n > depth:
            pytest.skip("direct concatenation deviates; covered elsewhere")
        result = simulate(build_schedule(scheme, depth, n), CostModel.practical())
        assert bubble_ratio(result) == pytest.approx(
            bubble_ratio_formula(scheme, depth, n)
        )

    @pytest.mark.parametrize(
        "scheme",
        [s for s in available_schemes() if not scheme_traits(s).cost_parameterized],
    )
    def test_activation_interval_matches_memory_model(self, scheme):
        depth, n = 8, 8
        schedule = build_schedule(scheme, depth, n)
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        lo, hi = activation_interval_formula(scheme, depth, n)
        assert min(units) == pytest.approx(lo)
        assert max(units) == pytest.approx(hi)

    def test_weight_copies(self):
        assert weight_copies_formula("dapple") == 1
        assert weight_copies_formula("gems") == 2
        assert weight_copies_formula("chimera", num_down_pipelines=2) == 4

    def test_scheme_properties_bundle(self):
        props = scheme_properties("chimera", 8, 8)
        assert props.synchronous
        assert props.activation_interval == (5, 8)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            bubble_ratio_formula("nope", 4, 4)


class TestTrace:
    def test_events_cover_all_compute_ops(self):
        schedule = build_schedule("chimera", 4, 4)
        result = simulate(schedule, CostModel.practical())
        events = to_chrome_trace(result)
        compute = [e for e in events if e["cat"] in ("forward", "backward")]
        assert len(compute) == sum(1 for _, op in schedule.compute_ops())

    def test_events_carry_metadata(self):
        result = simulate(build_schedule("chimera", 4, 4), CostModel.practical())
        event = to_chrome_trace(result)[0]
        assert {"replica", "stage", "micro_batches"} <= set(event["args"])

    def test_collectives_exported(self):
        cost = CostModel(forward_time=1.0, stage_grad_bytes=10.0)
        result = simulate(build_schedule("chimera", 4, 4), cost)
        events = to_chrome_trace(result)
        assert any(e["cat"] == "allreduce" for e in events)

    def test_write_round_trips(self, tmp_path):
        result = simulate(build_schedule("dapple", 2, 2), CostModel.practical())
        path = tmp_path / "trace.json"
        write_chrome_trace(result, str(path))
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert "dapple" in payload["otherData"]["schedule"]


class TestCLI:
    def test_show(self, capsys):
        assert cli_main(["show", "--scheme", "chimera", "-D", "4", "-N", "4"]) == 0
        out = capsys.readouterr().out
        assert "P0" in out and "makespan" in out

    def test_simulate(self, capsys):
        rc = cli_main(
            ["simulate", "--scheme", "chimera", "-W", "8", "-D", "4", "-B", "8"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "bubble" in out

    def test_select(self, capsys):
        rc = cli_main(["select", "-P", "32", "--mini-batch", "512"])
        assert rc == 0
        assert "selected" in capsys.readouterr().out

    def test_show_with_passes_and_fusion(self, capsys):
        rc = cli_main(
            [
                "show", "--scheme", "dapple", "-D", "4", "-N", "4",
                "--recompute", "--fuse-comm",
                "--link-alpha", "0.2", "--link-beta", "0.2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "0r" in out  # explicit RECOMPUTE op on the Gantt
        assert "p2p transfers" in out  # batched transfers on the wire

    def test_show_explicit_pass_spec(self, capsys):
        rc = cli_main(
            [
                "show", "--scheme", "zb_h1", "-D", "4", "-N", "4",
                "--passes", "fill_bubbles,lower_p2p,fuse_comm",
            ]
        )
        assert rc == 0
        assert "P0" in capsys.readouterr().out

    def test_show_unknown_pass_is_actionable(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="unknown schedule pass"):
            cli_main(
                ["show", "--scheme", "dapple", "--passes", "no_such_pass"]
            )

    def test_simulate_fused(self, capsys):
        rc = cli_main(
            [
                "simulate", "--scheme", "dapple", "-W", "8", "-D", "4",
                "-B", "8", "--fuse-comm",
            ]
        )
        assert rc == 0
        assert "throughput" in capsys.readouterr().out

    def test_plan_pass_axes(self, capsys):
        rc = cli_main(
            [
                "plan", "-P", "8", "--mini-batch", "64",
                "--schemes", "dapple", "zb_vhalf",
                "--budget-gib", "6", "--fuse-comm", "--recompute",
                "--top", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank" in out and ", R)" in out

    def test_plan(self, capsys):
        rc = cli_main(
            [
                "plan",
                "-P", "8",
                "--mini-batch", "64",
                "--schemes", "dapple", "zb_vhalf",
                "--budget-gib", "6",
                "--no-lower",
                "--top", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank" in out and "peak GiB" in out and "6 GiB budget" in out

    def test_plan_infeasible_budget_raises_actionable_error(self):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="budget"):
            cli_main(
                [
                    "plan",
                    "-P", "8",
                    "--mini-batch", "64",
                    "--schemes", "dapple",
                    "--budget-gib", "0.25",
                    "--no-lower",
                ]
            )

    def test_figure(self, capsys):
        rc = cli_main(["figure", "table4"])
        assert rc == 0
        assert "bert-48" in capsys.readouterr().out

    def test_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        rc = cli_main(["trace", "-D", "4", "-N", "4", "-o", str(out_file)])
        assert rc == 0
        assert out_file.exists()
