"""Golden ASCII-Gantt snapshots: schedule-shape regressions fail loudly.

One checked-in rendering per registered scheme at a fixed small
configuration (D=4 workers, N=4 micro-batches, practical cost model,
implicit communication), plus pass-pipeline variants — a recomputed
schedule (explicit RECOMPUTE ops in the rows), a fused-communication
schedule (batched transfers on a finite link, comm lanes visible), and a
contended lowered schedule (nonzero-beta link, transfers queueing on
per-channel FIFOs — the kernel's serialization path is what times these
lanes). Any
change to a builder's op order, to the greedy or stable-pattern
placement, to a pass's insertion rules, or to the simulator's timing of
these shapes shows up as a golden diff instead of a silent throughput
shift.

To regenerate after an *intended* schedule change::

    REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

then review the diff like any other code change.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.schedules.registry import available_schemes, build_schedule
from repro.sim.cost import CostModel
from repro.sim.gantt import render_gantt
from repro.sim.network import FlatTopology, HostChannel, LinkSpec

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
DEPTH, MICRO_BATCHES = 4, 4


def rendered(scheme: str) -> str:
    schedule = build_schedule(scheme, DEPTH, MICRO_BATCHES)
    return render_gantt(schedule, cost_model=CostModel.practical()) + "\n"


def _rendered_recompute() -> str:
    schedule = build_schedule("dapple", DEPTH, MICRO_BATCHES, recompute=True)
    return render_gantt(schedule, cost_model=CostModel.practical()) + "\n"


def _rendered_fused() -> str:
    schedule = build_schedule(
        "dapple", DEPTH, MICRO_BATCHES, passes="lower_p2p,fuse_comm"
    )
    cost = CostModel.practical().with_(
        topology=FlatTopology(LinkSpec(alpha=0.25, beta=0.25)),
        activation_message_bytes=1.0,
    )
    return render_gantt(schedule, cost_model=cost) + "\n"


def _rendered_contended() -> str:
    schedule = build_schedule("dapple", DEPTH, MICRO_BATCHES, passes="lower_p2p")
    cost = CostModel.practical().with_(
        topology=FlatTopology(LinkSpec(alpha=0.25, beta=0.5)),
        activation_message_bytes=2.0,
    )
    return render_gantt(schedule, cost_model=cost) + "\n"


def _rendered_offload() -> str:
    """Offloaded + lowered: host-channel lanes (``P0~``) next to the wire
    lanes, stash copies queueing on the per-worker PCIe channel."""
    schedule = build_schedule(
        "dapple", DEPTH, MICRO_BATCHES, passes="offload,lower_p2p"
    )
    cost = CostModel.practical().with_(
        topology=FlatTopology(LinkSpec(alpha=0.25, beta=0.25)),
        activation_message_bytes=1.0,
        host_channel=HostChannel(LinkSpec(alpha=0.25, beta=0.5)),
        offload_message_bytes=1.0,
    )
    return render_gantt(schedule, cost_model=cost) + "\n"


#: Pass-pipeline golden variants: name -> renderer.
VARIANTS = {
    "dapple_recompute": _rendered_recompute,
    "dapple_fused": _rendered_fused,
    "dapple_contended": _rendered_contended,
    "dapple_offload": _rendered_offload,
}


@pytest.mark.parametrize("scheme", available_schemes())
def test_gantt_matches_golden(scheme):
    path = GOLDEN_DIR / f"gantt_{scheme}.txt"
    actual = rendered(scheme)
    if os.environ.get("REGEN_GOLDENS"):
        path.write_text(actual)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden {path}; generate it with REGEN_GOLDENS=1 "
        f"PYTHONPATH=src python -m pytest tests/test_goldens.py"
    )
    expected = path.read_text()
    assert actual == expected, (
        f"{scheme} Gantt drifted from {path.name} (D={DEPTH}, "
        f"N={MICRO_BATCHES}, practical cost model). If the schedule change "
        f"is intended, regenerate with REGEN_GOLDENS=1 and review the diff."
    )


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_variant_gantt_matches_golden(name):
    path = GOLDEN_DIR / f"gantt_{name}.txt"
    actual = VARIANTS[name]()
    if os.environ.get("REGEN_GOLDENS"):
        path.write_text(actual)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing golden {path}; generate it with REGEN_GOLDENS=1 "
        f"PYTHONPATH=src python -m pytest tests/test_goldens.py"
    )
    assert actual == path.read_text(), (
        f"{name} Gantt drifted from {path.name}. If the pass-pipeline "
        f"change is intended, regenerate with REGEN_GOLDENS=1 and review "
        f"the diff."
    )


def test_no_stale_goldens():
    """Every checked-in golden corresponds to a scheme or a pass variant."""
    expected = {f"gantt_{s}.txt" for s in available_schemes()}
    expected |= {f"gantt_{v}.txt" for v in VARIANTS}
    actual = {p.name for p in GOLDEN_DIR.glob("gantt_*.txt")}
    assert actual == expected
