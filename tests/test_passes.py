"""The composable pass layer: manager, pipelines, and pass algebra.

Deterministic unit tests cover the manager (registration, spec parsing,
ordering validation, signatures as cache keys) and each pass's structural
postconditions; hypothesis property tests cover the *algebra* the rest of
the system leans on:

* pipeline signatures are stable — pure functions of the spec, identical
  across spellings, usable as cache keys;
* ``fuse_comm`` and ``fill_bubbles`` are idempotent;
* ``recompute`` commutes op-for-op with ``lower_p2p`` and ``fuse_comm``;
* ``fuse_comm`` preserves the makespan to 1e-9 at zero link occupancy for
  every scheme under arbitrary cost models;
* the array kernel reproduces the event engine to 1e-9 on passed
  (recomputed / filled / lowered / fused) schedules.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError, ScheduleError
from repro.schedules.cache import ScheduleCache
from repro.schedules.ir import OpKind, Operation
from repro.schedules.passes import (
    DEFAULT_PASS_MANAGER,
    FillBubblesPass,
    FuseCommPass,
    InsertSyncPass,
    LowerP2PPass,
    PassManager,
    PassPipeline,
    RecomputePass,
    SchedulePass,
    pipeline_signature,
    resolve_pipeline,
    schedule_facts,
)
from repro.schedules.registry import available_schemes, build_schedule, scheme_traits
from repro.schedules.validate import validate_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.kernel import simulate_fast
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.network import FlatTopology, LinkSpec

SETTINGS = settings(max_examples=30, deadline=None)

schemes = st.sampled_from(available_schemes())
even_depths = st.sampled_from([2, 4, 6, 8])
micro_batches = st.integers(min_value=1, max_value=12)
cost_units = st.floats(
    min_value=0.1, max_value=4.0, allow_nan=False, allow_infinity=False
)


def _zero_occupancy_model(alpha: float = 0.05) -> CostModel:
    return CostModel(
        forward_time=1.0,
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=0.0)),
        activation_message_bytes=1.0,
    )


# ------------------------------------------------------------------ manager
class TestManager:
    def test_builtins_registered(self):
        names = DEFAULT_PASS_MANAGER.available()
        for expected in (
            "fill_bubbles",
            "fuse_comm",
            "insert_sync",
            "lower_p2p",
            "recompute",
        ):
            assert expected in names

    def test_unknown_pass_name(self):
        with pytest.raises(ConfigurationError, match="unknown schedule pass"):
            resolve_pipeline("no_such_pass")

    def test_bad_pass_args(self):
        with pytest.raises(ScheduleError, match="lazy.*eager"):
            resolve_pipeline("insert_sync:sometimes")
        with pytest.raises(ConfigurationError, match="bad arguments"):
            resolve_pipeline("lower_p2p:extra")

    def test_spec_spellings_share_a_signature(self):
        a = resolve_pipeline("recompute,lower_p2p,fuse_comm")
        b = resolve_pipeline(["recompute", "lower_p2p", "fuse_comm"])
        c = resolve_pipeline(
            [RecomputePass(), LowerP2PPass(), FuseCommPass()]
        )
        d = resolve_pipeline(a)
        assert a.signature() == b.signature() == c.signature() == d.signature()
        assert pipeline_signature(None) == ()

    def test_duplicate_registration_rejected(self):
        manager = PassManager()
        manager.register("x", RecomputePass)
        with pytest.raises(ConfigurationError, match="already registered"):
            manager.register("x", RecomputePass)
        manager.register("x", FuseCommPass, replace=True)

    def test_custom_pass_usable_end_to_end(self):
        """register_pass is the extension point: a user pass slots into
        build_schedule's ``passes=`` and the cache key without new code."""

        class TagPass(SchedulePass):
            name = "tag"

            def run(self, schedule):
                return schedule.with_metadata(tagged=True)

        manager = DEFAULT_PASS_MANAGER
        manager.register("tag", TagPass, replace=True)
        try:
            schedule = build_schedule("dapple", 2, 2, passes="tag")
            assert schedule.metadata["tagged"]
            assert "tag" in schedule.metadata["passes"]
        finally:
            manager._factories.pop("tag", None)

    def test_ordering_validation(self):
        dapple = build_schedule("dapple", 2, 2)
        with pytest.raises(ScheduleError, match="requires fact 'lowered'"):
            resolve_pipeline("fuse_comm").run(dapple)
        with pytest.raises(ScheduleError, match="cannot run once fact"):
            resolve_pipeline("lower_p2p,insert_sync").run(dapple)
        with pytest.raises(ScheduleError, match="cannot run once fact"):
            resolve_pipeline("lower_p2p,fill_bubbles").run(
                build_schedule("zb_h1", 2, 2)
            )
        # The canonical full pipeline is valid.
        resolve_pipeline("recompute,fill_bubbles,lower_p2p,fuse_comm").run(
            build_schedule("zb_h1", 2, 4)
        )

    def test_facts_derived_from_schedule(self):
        plain = build_schedule("dapple", 2, 2)
        assert "sync" in schedule_facts(plain)
        lowered = build_schedule("dapple", 2, 2, passes="lower_p2p")
        assert "lowered" in schedule_facts(lowered)
        fused = build_schedule("dapple", 2, 2, passes="lower_p2p,fuse_comm")
        assert {"lowered", "fused_comm"} <= schedule_facts(fused)
        recomputed = build_schedule("dapple", 2, 2, recompute=True)
        assert "recompute" in schedule_facts(recomputed)

    def test_pipeline_recorded_in_metadata(self):
        s = build_schedule("gpipe", 2, 2, recompute=True, passes="lower_p2p")
        # Signatures are canonical: option-bearing passes spell out their
        # parameters, so "insert_sync" and "insert_sync:lazy" share one.
        assert s.metadata["passes"] == (
            "insert_sync:mode=lazy",
            "recompute",
            "lower_p2p",
        )

    def test_default_pipelines_declared_in_traits(self):
        for scheme in available_schemes():
            declared = scheme_traits(scheme).default_passes
            if scheme in ("pipedream", "chimera"):
                assert declared == ()  # scheme-managed synchronization
            else:
                assert declared == ("insert_sync",)
            resolve_pipeline(declared)  # every spec must parse


# ----------------------------------------------------------------- caching
def test_cache_keys_on_pipeline_signature():
    key = ScheduleCache.key
    base = key("dapple", 4, 4, {})
    assert key("dapple", 4, 4, {"passes": None}) == base
    assert key("dapple", 4, 4, {"passes": ""}) == base
    spelled = key("dapple", 4, 4, {"passes": "lower_p2p,fuse_comm"})
    listed = key("dapple", 4, 4, {"passes": ["lower_p2p", "fuse_comm"]})
    objs = key("dapple", 4, 4, {"passes": [LowerP2PPass(), FuseCommPass()]})
    assert spelled == listed == objs != base
    with_mode = key("dapple", 4, 4, {"passes": "insert_sync:eager"})
    assert with_mode != key("dapple", 4, 4, {"passes": "insert_sync"})


def test_cached_fused_artifacts_are_shared():
    cache = ScheduleCache()
    arts = cache.artifacts("dapple", 4, 4)
    assert arts.schedule_for(True, True) is arts.fused()
    assert arts.fused().metadata["fused_comm"]
    with pytest.raises(ScheduleError, match="requires a lowered"):
        arts.schedule_for(False, True)


# ----------------------------------------------------------- individual passes
class TestInsertSync:
    def test_eager_places_after_last_producer(self):
        schedule = InsertSyncPass("eager").run(
            build_schedule("gpipe", 4, 4)
        )
        validate_schedule(schedule, require_sync_ops=True)
        for worker, ops in enumerate(schedule.worker_ops):
            for i, op in enumerate(ops):
                if op.kind is OpKind.ALLREDUCE:
                    prev = ops[i - 1]
                    assert prev.produces_weight_grads
                    assert (prev.replica, prev.stage) == (op.replica, op.stage)

    def test_re_placement_is_mode_roundtrip(self):
        lazy = build_schedule("gpipe", 4, 4)  # default insert_sync (lazy)
        eager = InsertSyncPass("eager").run(lazy)
        back = InsertSyncPass("lazy").run(eager)
        assert back.worker_ops == lazy.worker_ops

    def test_rejects_per_micro_batch_sync(self):
        with pytest.raises(ScheduleError, match="scheme-managed"):
            InsertSyncPass().run(build_schedule("pipedream", 2, 2))


class TestRecomputePass:
    @pytest.mark.parametrize("scheme", available_schemes())
    def test_memory_drops_or_matches_minimal(self, scheme):
        """Acceptance: peak activation memory drops for every scheme (GEMS
        is already at the 1-stash minimum, where the rematerialized
        activation itself is the floor)."""
        depth, n = 4, 8
        model = MemoryModel(activation_bytes=1.0, stash_input_bytes=0.25)
        base = analyze_memory(build_schedule(scheme, depth, n), model)
        recomputed = analyze_memory(
            build_schedule(scheme, depth, n, recompute=True), model
        )
        if scheme == "gems":
            assert recomputed.peak_bytes <= base.peak_bytes
        else:
            assert recomputed.peak_bytes < base.peak_bytes

    def test_skips_flagged_backwards(self):
        """Chimera forward doubling bakes flag-recomputation into its
        shape; the pass must not double-charge those micro-batches."""
        schedule = build_schedule(
            "chimera", 4, 8, concat="doubling", recompute=True
        )
        validate_schedule(schedule)
        flagged = {
            (op.replica, op.stage, mb)
            for _, op in schedule.all_ops()
            if op.is_backward and op.recompute
            for mb in op.micro_batches
        }
        explicit = {
            (op.replica, op.stage, mb)
            for _, op in schedule.all_ops()
            if op.is_recompute
            for mb in op.micro_batches
        }
        assert flagged and not (flagged & explicit)

    def test_total_cost_matches_flag_model(self):
        """An explicit RECOMPUTE op carries exactly the forward-equivalent
        the flag path buried in the backward, so total busy time agrees."""
        cost = CostModel.practical()
        schedule = build_schedule("gpipe", 2, 3, recompute=True)
        result = simulate(schedule, cost)
        busy = sum(result.busy_time(w) for w in range(schedule.num_workers))
        n, stages = 3, 2
        expected = n * stages * (1.0 + cost.recompute_backward_ratio)
        assert busy == pytest.approx(expected)

    def test_remat_prefetches_into_bubbles(self):
        """The explicit op's only dependency is the stashed input, so the
        simulator hoists it into idle time — recompute costs less wall
        time than the paper's B=3F critical-path model."""
        cost = CostModel.practical()
        plain = simulate(build_schedule("dapple", 4, 8), cost)
        recomputed = simulate(
            build_schedule("dapple", 4, 8, recompute=True), cost
        )
        flag_model = 8 * 4  # N * (1F + 3F) steady lower bound per stage
        assert recomputed.compute_makespan < flag_model + 3 * 4
        assert recomputed.compute_makespan >= plain.compute_makespan


class TestFillBubbles:
    def test_noop_without_split_backwards(self):
        s = build_schedule("gpipe", 4, 4)
        assert FillBubblesPass().run(s).worker_ops == s.worker_ops

    def test_improves_a_naive_split_schedule(self):
        """W parked right after its Bi (the naive order) gets re-seated
        into drain bubbles — the generalized ZB-H1 tail-fill."""
        from dataclasses import replace

        from repro.schedules.ir import freeze_worker_ops

        base = build_schedule("zb_h1", 4, 8)
        rows = []
        for ops in base.worker_ops:
            row = []
            for op in ops:
                if op.is_backward_weight:
                    continue
                row.append(op)
                if op.is_backward_input:
                    row.append(
                        Operation(
                            OpKind.BACKWARD_WEIGHT,
                            op.replica,
                            op.stage,
                            op.micro_batches,
                            op.part,
                        )
                    )
            rows.append(row)
        naive = replace(base, worker_ops=freeze_worker_ops(rows))
        cm = CostModel(
            forward_time=1.0,
            backward_ratio=2.0,
            backward_input_ratio=1.0,
            backward_weight_ratio=1.0,
        )
        filled = FillBubblesPass().run(naive)
        validate_schedule(filled, require_sync_ops=True)
        assert (
            simulate_fast(filled, cm).compute_makespan
            < simulate_fast(naive, cm).compute_makespan
        )


# ------------------------------------------------------------ pass algebra
@SETTINGS
@given(scheme=schemes, depth=even_depths, n=micro_batches)
def test_fuse_comm_idempotent(scheme, depth, n):
    fused = build_schedule(scheme, depth, n, passes="lower_p2p,fuse_comm")
    again = FuseCommPass().run(fused)
    assert again.worker_ops == fused.worker_ops


@SETTINGS
@given(
    scheme=st.sampled_from(["zb_h1", "zb_v", "zb_vhalf", "zb_vmin"]),
    depth=even_depths,
    n=micro_batches,
)
def test_fill_bubbles_idempotent(scheme, depth, n):
    filled = build_schedule(scheme, depth, n, passes="fill_bubbles")
    again = FillBubblesPass().run(filled)
    assert again.worker_ops == filled.worker_ops


@SETTINGS
@given(scheme=schemes, depth=even_depths, n=micro_batches)
def test_recompute_lowering_commute(scheme, depth, n):
    """The declared commutation: recompute∘lower == lower∘recompute (and
    the same through fuse_comm), op-for-op."""
    base = build_schedule(scheme, depth, n)
    a = LowerP2PPass().run(RecomputePass().run(base))
    b = RecomputePass().run(LowerP2PPass().run(base))
    assert a.worker_ops == b.worker_ops
    fa = FuseCommPass().run(a)
    fb = RecomputePass().run(FuseCommPass().run(LowerP2PPass().run(base)))
    assert fa.worker_ops == fb.worker_ops
    validate_schedule(fa)


@SETTINGS
@given(
    scheme=schemes,
    depth=even_depths,
    n=micro_batches,
    alpha=st.floats(min_value=0.0, max_value=2.0),
    f=cost_units,
    b=cost_units,
    w=cost_units,
)
def test_fuse_comm_makespan_parity_at_zero_occupancy(
    scheme, depth, n, alpha, f, b, w
):
    """Acceptance: batching SEND/RECV pairs moves no op at beta = 0, for
    any scheme, latency, and f/b/w split."""
    cost = CostModel(
        forward_time=f,
        backward_ratio=(b + w) / f,
        backward_input_ratio=b / f,
        backward_weight_ratio=w / f,
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=0.0)),
        activation_message_bytes=1.0,
    )
    lowered = build_schedule(scheme, depth, n, passes="lower_p2p")
    fused = FuseCommPass().run(lowered)
    assert fused.count(OpKind.RECV) == 0
    assert sum(len(r) for r in fused.worker_ops) < sum(
        len(r) for r in lowered.worker_ops
    )
    low = simulate(lowered, cost)
    fus = simulate(fused, cost)
    assert abs(low.compute_makespan - fus.compute_makespan) < 1e-9
    assert abs(low.iteration_time - fus.iteration_time) < 1e-9


@SETTINGS
@given(
    scheme=schemes,
    depth=even_depths,
    n=micro_batches,
    recompute=st.booleans(),
    fused=st.booleans(),
    alpha=st.floats(min_value=0.0, max_value=1.0),
    f=cost_units,
    b=cost_units,
    w=cost_units,
)
def test_kernel_matches_engine_on_passed_schedules(
    scheme, depth, n, recompute, fused, alpha, f, b, w
):
    """The array kernel stays engine-exact (1e-9) across the whole pass
    product: recompute × {lowered, fused} × random cost models."""
    specs = "lower_p2p,fuse_comm" if fused else "lower_p2p"
    schedule = build_schedule(
        scheme, depth, n, recompute=recompute, passes=specs
    )
    cost = CostModel(
        forward_time=f,
        backward_ratio=(b + w) / f,
        backward_input_ratio=b / f,
        backward_weight_ratio=w / f,
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=0.0)),
        activation_message_bytes=1.0,
    )
    event = simulate(schedule, cost)
    fast = simulate_fast(schedule, cost)
    assert abs(event.compute_makespan - fast.compute_makespan) < 1e-9
    assert abs(event.iteration_time - fast.iteration_time) < 1e-9


@SETTINGS
@given(scheme=schemes, depth=even_depths, n=micro_batches)
def test_signature_stability_and_metadata(scheme, depth, n):
    """One spec, many spellings, one signature — and the signature built
    twice (fresh pass objects) is identical, so cache keys are stable."""
    spec = "recompute,lower_p2p,fuse_comm"
    sig1 = pipeline_signature(spec)
    sig2 = resolve_pipeline(spec.split(",")).signature()
    assert sig1 == sig2 == ("recompute", "lower_p2p", "fuse_comm")
    schedule = build_schedule(scheme, depth, n, passes=spec)
    assert tuple(schedule.metadata["passes"])[-3:] == sig1


def test_pipeline_object_reusable():
    pipeline = PassPipeline([LowerP2PPass(), FuseCommPass()])
    for scheme in ("gpipe", "zb_v"):
        out = pipeline.run(build_schedule(scheme, 2, 3))
        assert out.lowered and out.metadata["fused_comm"]
