"""The ``synthesize`` scheme: search, budgets, and fingerprinted caching.

Four concerns, mirroring the builder's contract:

* **Builder** — registration, determinism, input validation, metadata
  provenance, and the synthesized-schedule validator rule set.
* **Budgets** — the peak-stash pre-filter in full-stage (Ma) units,
  including the exact-boundary case (a candidate whose peak *equals* the
  budget must be accepted) and the actionable infeasibility error.
* **Acceptance battery** — over the D × N grid with seeded-random split
  costs, the synthesized schedule matches or beats every registered
  scheme's makespan at that scheme's own memory footprint. This is the
  ISSUE's match-or-beat guarantee, held by construction (derived seeds)
  and checked end to end here.
* **Cache keys** — cost-parameterized builds extend the cache key with
  the registered fingerprint: two different cost models or budgets never
  alias one entry, in memory or across a subprocess cold start on the
  disk tier, while explicit-default and no-options callers share one.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import subprocess
import sys

import pytest

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    ScheduleError,
    ValidationError,
)
from repro.schedules.cache import ScheduleCache, cached_build_schedule
from repro.schedules.diskcache import DiskScheduleCache
from repro.schedules.ir import Schedule
from repro.schedules.registry import available_schemes, build_schedule, scheme_traits
from repro.schedules.synthesize import (
    build_synthesize_schedule,
    peak_stash_units,
    synthesis_cost_model,
    synthesize_fingerprint,
)
from repro.schedules.validate import validate_synthesized_schedule
from repro.sim.kernel import simulate_batch_many

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestBuilder:
    def test_registered_and_validates(self):
        assert "synthesize" in available_schemes()
        assert scheme_traits("synthesize").cost_parameterized
        schedule = build_schedule("synthesize", 4, 8)
        assert schedule.scheme == "synthesize"
        validate_synthesized_schedule(schedule)

    def test_deterministic(self):
        a = build_synthesize_schedule(4, 8, b_time=1.3, w_time=0.7)
        b = build_synthesize_schedule(4, 8, b_time=1.3, w_time=0.7)
        assert a.worker_ops == b.worker_ops
        assert dict(a.metadata) == dict(b.metadata)

    def test_metadata_carries_provenance(self):
        schedule = build_synthesize_schedule(
            4, 8, b_time=1.5, w_time=0.5, comm_time=0.1, memory_budget_units=4.0
        )
        meta = schedule.metadata
        assert meta["cost"] == (1.0, 1.5, 0.5, 0.1)
        assert meta["memory_budget_units"] == 4.0
        assert meta["peak_units"] == pytest.approx(peak_stash_units(schedule))
        assert meta["makespan"] > 0
        assert meta["beam"] == (4, 3)
        assert isinstance(meta["seed"], str) and meta["seed"]

    @pytest.mark.parametrize(
        "kwargs, exc",
        [
            (dict(depth=0), ScheduleError),
            (dict(num_micro_batches=0), ScheduleError),
            (dict(f_time=0.0), ConfigurationError),
            (dict(b_time=-1.0), ConfigurationError),
            (dict(w_time=0.0), ConfigurationError),
            (dict(comm_time=-0.1), ConfigurationError),
            (dict(memory_budget_units=0.0), ConfigurationError),
            (dict(beam_width=0), ConfigurationError),
            (dict(beam_rounds=-1), ConfigurationError),
        ],
    )
    def test_input_validation(self, kwargs, exc):
        full = dict(depth=4, num_micro_batches=8)
        full.update(kwargs)
        depth = full.pop("depth")
        n = full.pop("num_micro_batches")
        with pytest.raises(exc):
            build_synthesize_schedule(depth, n, **full)

    def test_registry_rejects_unknown_builder_option(self):
        with pytest.raises(ConfigurationError):
            build_schedule("synthesize", 4, 8, frobnicate=1)


class TestValidatorRules:
    def test_wrong_scheme_rejected(self):
        with pytest.raises(ValidationError, match="scheme 'synthesize'"):
            validate_synthesized_schedule(build_schedule("dapple", 4, 4))

    def test_fused_backward_rejected(self):
        base = build_schedule("dapple", 4, 4)
        fake = Schedule(
            scheme="synthesize",
            placement=base.placement,
            num_micro_batches=base.num_micro_batches,
            worker_ops=base.worker_ops,
            synchronous=base.synchronous,
            metadata=base.metadata,
        )
        with pytest.raises(ValidationError, match="fused backward"):
            validate_synthesized_schedule(fake)

    def test_missing_provenance_rejected(self):
        good = build_schedule("synthesize", 4, 4)
        stripped = Schedule(
            scheme="synthesize",
            placement=good.placement,
            num_micro_batches=good.num_micro_batches,
            worker_ops=good.worker_ops,
            synchronous=good.synchronous,
        )
        with pytest.raises(ValidationError, match="metadata"):
            validate_synthesized_schedule(stripped)

    def test_peak_recount_mismatch_rejected(self):
        tampered = build_schedule("synthesize", 4, 4).with_metadata(peak_units=99.0)
        with pytest.raises(ValidationError, match="peak"):
            validate_synthesized_schedule(tampered)

    def test_budget_violation_rejected(self):
        schedule = build_schedule("synthesize", 4, 8)
        with pytest.raises(ValidationError, match="budget"):
            validate_synthesized_schedule(schedule, memory_budget_units=0.25)


class TestBudget:
    def test_budget_caps_peak(self):
        schedule = build_synthesize_schedule(4, 16, memory_budget_units=3.0)
        assert peak_stash_units(schedule) <= 3.0 + 1e-9

    def test_exact_boundary_accepted(self):
        """A budget equal to an achievable peak must not be rejected by
        float drift — the planner-side analogue is MemoryReport.fits."""
        free = build_synthesize_schedule(4, 16)
        peak = peak_stash_units(free)
        pinned = build_synthesize_schedule(4, 16, memory_budget_units=peak)
        assert peak_stash_units(pinned) <= peak + 1e-9

    def test_infeasible_budget_names_floor(self):
        with pytest.raises(ScheduleError, match="smallest achievable peak"):
            build_synthesize_schedule(4, 16, memory_budget_units=0.1)

    def test_tighter_budget_never_faster(self):
        free = build_synthesize_schedule(8, 16, b_time=1.2, w_time=0.8)
        tight = build_synthesize_schedule(
            8, 16, b_time=1.2, w_time=0.8, memory_budget_units=3.0
        )
        assert tight.metadata["makespan"] >= free.metadata["makespan"] - 1e-9


#: The ISSUE's acceptance grid. Costs are seeded per point so the battery
#: is deterministic yet covers a spread of b/w asymmetries and comm costs.
ACCEPTANCE_GRID = [(d, n) for d in (4, 8, 16) for n in (16, 32, 64)]


@pytest.mark.parametrize("depth,n", ACCEPTANCE_GRID)
def test_acceptance_matches_or_beats_every_scheme(depth, n):
    """At every scheme's own memory footprint, the synthesized schedule's
    makespan is <= that scheme's (pre-sync compute makespan, identical
    cost model). Small beam: the guarantee comes from the derived seeds;
    refinement may only improve on it."""
    rng = random.Random(1000 * depth + n)
    b = round(rng.uniform(0.5, 2.0), 3)
    w = round(rng.uniform(0.5, 2.0), 3)
    comm = rng.choice([0.0, 0.05])
    model = synthesis_cost_model(1.0, b, w, comm)

    entries = []
    for scheme in available_schemes():
        if scheme_traits(scheme).cost_parameterized:
            continue
        try:
            schedule = cached_build_schedule(scheme, depth, n)
        except ReproError:
            continue
        entries.append((scheme, schedule, peak_stash_units(schedule)))
    assert entries
    batch = simulate_batch_many([(s, model) for _, s, _ in entries])
    makespans = {
        scheme: float(batch.compute_makespan[i])
        for i, (scheme, _, _) in enumerate(entries)
    }
    peaks = {scheme: peak for scheme, _, peak in entries}

    for budget in sorted({round(p, 9) for p in peaks.values()}):
        synth = build_synthesize_schedule(
            depth,
            n,
            b_time=b,
            w_time=w,
            comm_time=comm,
            memory_budget_units=budget,
            beam_width=2,
            beam_rounds=1,
        )
        assert synth.metadata["peak_units"] <= budget + 1e-9
        for scheme, peak in peaks.items():
            if peak <= budget + 1e-9:
                assert synth.metadata["makespan"] <= makespans[scheme] + 1e-9, (
                    f"synthesize lost to {scheme} at D={depth}, N={n}, "
                    f"b={b}, w={w}, comm={comm}, budget={budget:g}"
                )


class TestFingerprint:
    def test_defaults_fill_in(self):
        assert synthesize_fingerprint({}) == synthesize_fingerprint(
            dict(
                f_time=1.0,
                b_time=1.0,
                w_time=1.0,
                comm_time=0.0,
                memory_budget_units=None,
                beam_width=4,
                beam_rounds=3,
            )
        )

    def test_distinct_costs_distinct_fingerprints(self):
        base = synthesize_fingerprint({})
        assert synthesize_fingerprint(dict(b_time=2.0)) != base
        assert synthesize_fingerprint(dict(memory_budget_units=2.0)) != base
        assert synthesize_fingerprint(dict(beam_rounds=0)) != base

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown option"):
            synthesize_fingerprint(dict(frobnicate=1))

    def test_non_numeric_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a number"):
            synthesize_fingerprint(dict(b_time="fast"))


class TestCacheKeys:
    """Satellite: (scheme, D, N)-equal synthesized builds never alias."""

    def test_classic_schemes_keep_four_tuple_keys(self):
        key = ScheduleCache.key("dapple", 4, 8, {})
        assert key is not None and len(key) == 4

    def test_synthesize_keys_carry_fingerprint(self):
        base = ScheduleCache.key("synthesize", 4, 8, {})
        assert base is not None and len(base) == 5
        assert base != ScheduleCache.key("synthesize", 4, 8, dict(b_time=2.0))
        assert base != ScheduleCache.key(
            "synthesize", 4, 8, dict(memory_budget_units=2.0)
        )
        # Explicit defaults share the no-options entry.
        assert base == ScheduleCache.key(
            "synthesize", 4, 8, dict(f_time=1.0, beam_width=4)
        )

    def test_pipeline_options_still_keyed_alongside_fingerprint(self):
        base = ScheduleCache.key("synthesize", 4, 8, {})
        recompute = ScheduleCache.key("synthesize", 4, 8, dict(recompute=True))
        assert recompute != base
        assert ScheduleCache.key("synthesize", 4, 8, dict(recompute=False)) == base

    def test_in_process_no_alias(self, tmp_path):
        cache = ScheduleCache(8, disk=DiskScheduleCache(tmp_path / "disk"))
        fast_w = cache.artifacts("synthesize", 4, 8, w_time=0.25).schedule
        slow_w = cache.artifacts("synthesize", 4, 8, w_time=4.0).schedule
        assert fast_w.metadata["cost"] != slow_w.metadata["cost"]
        assert cache.stats().entries == 2
        again = cache.artifacts("synthesize", 4, 8, w_time=0.25).schedule
        assert again is fast_w  # memory hit, not a rebuild
        assert cache.stats().hits == 1

    def test_disk_tier_no_alias_across_cold_start(self, tmp_path):
        """Two synthesized builds differing only in cost parameters land in
        distinct disk entries, and a *fresh process* gets each back from
        disk (no rebuild) with the right provenance."""
        script = """\
import json
from repro.schedules.cache import cached_build_schedule, disk_cache_stats

def rows(schedule):  # deterministic across interpreters, unlike hash()
    return [[op.short() for op in row] for row in schedule.worker_ops]

a = cached_build_schedule("synthesize", 4, 16)
b = cached_build_schedule("synthesize", 4, 16, memory_budget_units=2.0)
print(json.dumps({
    "a_budget": a.metadata["memory_budget_units"],
    "b_budget": b.metadata["memory_budget_units"],
    "a_peak": a.metadata["peak_units"], "b_peak": b.metadata["peak_units"],
    "a_ops": rows(a), "b_ops": rows(b),
    "distinct": a.worker_ops != b.worker_ops,
    "disk_hits": disk_cache_stats().hits,
}))
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "warm")
        env.pop("REPRO_CACHE_DISABLE", None)

        def run():
            proc = subprocess.run(
                [sys.executable, "-c", script],
                cwd=REPO,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        warm = run()
        assert warm["a_budget"] is None and warm["b_budget"] == 2.0
        assert warm["b_peak"] <= 2.0 + 1e-9 < warm["a_peak"]
        assert warm["distinct"], "different budgets must yield different entries"

        cold = run()  # same REPRO_CACHE_DIR, fresh interpreter
        assert cold["disk_hits"] == 2, "cold start must serve both from disk"
        assert (cold["a_peak"], cold["b_peak"]) == (warm["a_peak"], warm["b_peak"])
        assert (cold["a_ops"], cold["b_ops"]) == (warm["a_ops"], warm["b_ops"])
