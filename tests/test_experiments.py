"""The per-figure experiment drivers run and reproduce the paper's shapes."""

import pytest

from repro.bench.experiments import (
    figure1,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    figure19,
    planner_table,
    table2,
    table3,
    table4,
)


class TestTables:
    def test_table2_analytic_matches_measured(self):
        for row in table2.rows(8, 8):
            if row.scheme in ("pipedream", "pipedream_2bw", "gems"):
                continue
            assert row.measured_bubble == pytest.approx(
                row.analytic_bubble, abs=1e-9
            ), row.scheme

    def test_table2_chimera_signature(self):
        rows = {r.scheme: r for r in table2.rows(8, 8)}
        chimera = rows["chimera"]
        assert chimera.act_units_min == 5 and chimera.act_units_max == 8
        assert chimera.weight_copies == 2 and chimera.synchronous

    def test_table3_formulas_exact(self):
        for row in table3.rows(8):
            assert row.measured_bubble == pytest.approx(row.analytic_bubble)
            assert row.act_min_measured == pytest.approx(row.act_min_analytic)

    def test_table4_param_errors_small(self):
        text = table4.run()
        assert "bert-48" in text and "gpt2-64" in text

    def test_runners_return_text(self):
        for mod in (table2, table3, table4):
            assert isinstance(mod.run(fast=True), str)


class TestFigure1:
    def test_chimera_wins_and_speedup_range(self):
        res = figure1.results(num_workers=512, mini_batch=512)
        by = {r.config.scheme: r for r in res}
        chimera = by["chimera"]
        for scheme in ("gpipe", "gems", "dapple", "pipedream_2bw"):
            assert chimera.throughput > by[scheme].throughput, scheme
        # Paper: 1.16x (2BW) up to 2.34x (GEMS); shapes, not exact factors.
        assert chimera.throughput / by["gems"].throughput > 1.8
        assert chimera.throughput / by["pipedream_2bw"].throughput < 1.6

    def test_chimera_runs_without_recompute(self):
        res = figure1.results(num_workers=512, mini_batch=512)
        chimera = next(r for r in res if r.config.scheme == "chimera")
        assert not chimera.recompute and not chimera.oom


class TestPlannerTable:
    def test_budget_sweep_shrinks_and_shifts_to_lean_schemes(self):
        """As the budget tightens the survivor count falls monotonically
        and the winner moves off the memory-hungry end of the registry."""
        from repro.bench.machines import PIZ_DAINT
        from repro.bench.workloads import BERT48

        rows = planner_table.best_per_budget(
            PIZ_DAINT,
            BERT48,
            num_workers=8,
            mini_batch=64,
            budgets_gib=(None, 3.0, 0.25),
            schemes=("dapple", "zb_v", "zb_vhalf", "zb_vmin"),
            lowered=False,
        )
        counts = [count for _, _, count in rows]
        assert counts == sorted(counts, reverse=True)
        assert rows[0][1] is not None and rows[1][1] is not None
        # Throughput can only fall as the budget tightens.
        assert rows[1][1].throughput <= rows[0][1].throughput
        # A sub-GiB budget holds nothing: the row degrades gracefully.
        assert rows[2][1] is None and rows[2][2] == 0


class TestFigure9:
    def test_runs_with_v_shaped_schemes(self):
        """The scheme sweep survives the 2D-chunk placements (the memory
        model is calibrated per the schedule's own stage count, and stage
        counts that do not divide the layers are skipped, not crashed)."""
        text = figure9.run(fast=True)
        assert "zb_vmin" in text

    def test_memory_shape_signatures(self):
        from repro.bench.workloads import GPT2_32

        schemes = {}
        for scheme in ("chimera", "dapple", "gpipe", "gems", "pipedream"):
            schemes[scheme] = figure9.memory_report(GPT2_32, 1, 32, 1, 512, scheme)
        # GPipe's N in-flight activations dominate.
        assert schemes["gpipe"].peak_bytes > schemes["dapple"].peak_bytes
        # Chimera is flatter than DAPPLE.
        assert schemes["chimera"].imbalance < schemes["dapple"].imbalance
        # GEMS is the smallest.
        assert schemes["gems"].peak_bytes == min(
            r.peak_bytes for r in schemes.values()
        )

    def test_chimera_peak_close_to_dapple(self):
        """Despite 2 model replicas, Chimera's peak stays comparable to
        DAPPLE's (within 25%) thanks to the balanced distribution (§4.1)."""
        from repro.bench.workloads import BERT48

        chim = figure9.memory_report(BERT48, 2, 16, 8, 512, "chimera")
        dap = figure9.memory_report(BERT48, 2, 16, 8, 512, "dapple")
        assert chim.peak_bytes < dap.peak_bytes * 1.25


class TestTuningFigures:
    def test_figure10_dapple_best_is_w8_d4(self):
        _, best = figure10.tune("dapple", fast=True)
        assert best is not None
        assert (best.config.width, best.config.depth) == (8, 4)

    def test_figure10_gems_prefers_larger_micro_batch_than_dapple(self):
        """GEMS gains nothing from a small B (its bubbles do not shrink),
        so its best micro-batch is at least DAPPLE's (paper: B=32 vs 4)."""
        _, gems = figure10.tune("gems", fast=True)
        _, dapple = figure10.tune("dapple", fast=True)
        assert gems is not None and dapple is not None
        assert gems.config.micro_batch >= dapple.config.micro_batch

    def test_figure11_runs(self):
        text = figure11.run(fast=True)
        assert "gpipe" in text and "*" in text


class TestSyncAndModelFigures:
    def test_figure12_opt_never_slower(self):
        for workers, bb in ((16, 256), (32, 512)):
            t = figure12.throughputs(workers, bb)
            assert t["eager_opt"] >= t["eager"] * 0.999
            assert t["eager_opt"] >= t["lazy"] * 0.999

    def test_figure13_model_error_within_10_percent(self):
        from repro.bench.workloads import BERT48

        rows = figure13.evaluate(BERT48, 32, 256, (2, 4, 8, 16))
        assert rows
        assert all(r.error < 0.10 for r in rows)

    def test_figure13_model_selects_best(self):
        from repro.bench.workloads import BERT48

        rows = figure13.evaluate(BERT48, 32, 256, (2, 4, 8, 16))
        best_sim = max(rows, key=lambda r: r.simulated)
        best_model = max(rows, key=lambda r: r.modelled)
        assert best_sim.depth == best_model.depth


class TestScalingFigures:
    def test_figure14_chimera_beats_synchronous_and_on_par_with_async(self):
        data = figure14.scaling_results()
        for i in range(3):
            chimera = data["chimera"][i].throughput
            for scheme in ("dapple", "gpipe", "gems"):
                assert chimera >= data[scheme][i].throughput, (scheme, i)
            # "On-par with PipeDream-2BW ... but more convergence-friendly".
            assert chimera >= 0.85 * data["pipedream_2bw"][i].throughput

    def test_figure14_gems_is_slowest_synchronous(self):
        data = figure14.scaling_results()
        gems = data["gems"][-1].throughput
        for scheme in ("chimera", "dapple", "gpipe"):
            assert data[scheme][-1].throughput > gems

    def test_figure15_text_reports_efficiency(self):
        text = figure15.run(fast=True)
        assert "efficiency" in text

    def test_figure16_chimera_best_synchronous_on_v100(self):
        """The same conclusions hold on the newer machine: Chimera beats
        every synchronous baseline; the asynchronous 2BW is on par (the
        paper gives Chimera a small edge, we give 2BW one — both within
        the paper's own "on-par" characterization)."""
        text = figure16.run(fast=True)
        assert "sync winner: chimera" in text


class TestLargeMiniBatchFigures:
    def test_figure17_chimera_beats_gems_everywhere(self):
        text = figure17.run(fast=True)
        assert "chimera" in text

    def test_figure18_doubling_beats_direct(self):
        from repro.bench.harness import ExperimentConfig, run_configuration
        from repro.bench.machines import PIZ_DAINT
        from repro.bench.workloads import GPT2_64

        def thr(concat):
            return run_configuration(
                ExperimentConfig(
                    scheme="chimera",
                    machine=PIZ_DAINT,
                    workload=GPT2_64,
                    width=16,
                    depth=8,
                    micro_batch=1,
                    mini_batch=256,
                    recompute=True,
                    options={"concat": concat},
                )
            ).throughput

        assert thr("doubling") > thr("direct")


class TestFigure19:
    def test_bidirectional_beats_single_pipeline(self):
        data = dict(figure19.panel(4, 16, max_pipes=4))
        assert data[2] > data[1]

    def test_tradeoff_reverses_as_stages_coarsen(self):
        """W=4, D=16: the allreduce overhead eventually outweighs the
        bubble savings — 8 pipes lose to fewer pipes (the paper's turnover
        happens one notch earlier, at 4 pipes; see EXPERIMENTS.md)."""
        data = dict(figure19.panel(4, 16, max_pipes=8))
        best = max(data, key=data.get)
        assert best < 8
        assert data[8] < data[best]

    def test_deep_narrow_tolerates_more_pipes(self):
        """W=2, D=32: with deeper pipelines, more pipes keep helping
        longer (paper: 4 pipes best) before the collective cost wins."""
        deep = dict(figure19.panel(2, 32, max_pipes=16))
        shallow = dict(figure19.panel(4, 16, max_pipes=16))
        best_deep = max(deep, key=deep.get)
        best_shallow = max(shallow, key=shallow.get)
        assert best_deep >= best_shallow
        assert deep[16] < deep[best_deep]  # and it still turns over
