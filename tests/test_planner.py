"""Scheme-agnostic planner: ranking, budget pruning, and failure modes."""

import pytest

from repro.bench.harness import ExperimentConfig, run_configuration
from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48
from repro.common.errors import ConfigurationError
from repro.common.units import GIB
from repro.perf.planner import (
    PlanEntry,
    candidate_grid,
    format_plan,
    plan_configurations,
)

#: Small synchronous scenario used throughout: P=8, B̂=64 keeps every
#: simulation tiny while still admitting several (scheme, W, D, B) cells.
SMALL = dict(num_workers=8, mini_batch=64, lowered=False)
SYNC_SCHEMES = ("dapple", "chimera", "zb_h1", "zb_v", "zb_vhalf", "zb_vmin")


def small_plan(machine=PIZ_DAINT, **overrides) -> list[PlanEntry]:
    kwargs = dict(SMALL, schemes=SYNC_SCHEMES)
    kwargs.update(overrides)
    return plan_configurations(machine, BERT48, **kwargs)


class TestCandidateGrid:
    def test_respects_scheme_traits(self):
        grid = list(
            candidate_grid(8, BERT48, 64, schemes=("chimera", "zb_v", "dapple"))
        )
        for scheme, width, depth, b in grid:
            assert width * depth == 8
            if scheme == "chimera":
                assert depth % 2 == 0
            if scheme == "zb_v":
                # 2D chunk stages must divide the 48 layers.
                assert BERT48.num_layers % (2 * depth) == 0

    def test_micro_batches_are_powers_of_two_dividing_share(self):
        for _, width, _, b in candidate_grid(8, BERT48, 64, schemes=("dapple",)):
            assert b & (b - 1) == 0
            assert 64 % (width * b) == 0


class TestRanking:
    def test_nonempty_ranked_table_on_both_machines(self):
        """Acceptance: the planner returns a non-empty ranked table for at
        least two machine specs."""
        for machine in (PIZ_DAINT, V100_CLUSTER):
            entries = small_plan(machine)
            assert entries
            rates = [e.throughput for e in entries]
            assert rates == sorted(rates, reverse=True)

    def test_entries_match_harness_results(self):
        """A plan entry is exactly the harness outcome for that cell."""
        entry = small_plan()[0]
        result = run_configuration(
            ExperimentConfig(
                scheme=entry.scheme,
                machine=PIZ_DAINT,
                workload=BERT48,
                width=entry.width,
                depth=entry.depth,
                micro_batch=entry.micro_batch,
                mini_batch=64,
                lowered=False,
            )
        )
        assert not result.oom
        assert entry.throughput == pytest.approx(result.throughput)
        assert entry.peak_memory_bytes == pytest.approx(result.peak_memory_bytes)
        assert entry.recompute == result.recompute

    def test_top_k_truncates(self):
        full = small_plan()
        assert small_plan(top_k=3) == full[:3]

    def test_batch_ranking_matches_harness_for_every_entry(self):
        """The batch-simulation ranking path is the harness, not a model.

        Every entry — synchronous schemes grouped through
        ``simulate_batch``, asynchronous ones through the steady-state
        path — must reproduce ``run_configuration`` exactly, in both
        communication modes.
        """
        for lowered in (False, True):
            entries = small_plan(
                schemes=("dapple", "zb_v", "pipedream_2bw"), lowered=lowered
            )
            assert entries
            assert {e.scheme for e in entries} >= {"dapple", "zb_v"}
            for entry in entries:
                result = run_configuration(
                    ExperimentConfig(
                        scheme=entry.scheme,
                        machine=PIZ_DAINT,
                        workload=BERT48,
                        width=entry.width,
                        depth=entry.depth,
                        micro_batch=entry.micro_batch,
                        mini_batch=64,
                        lowered=lowered,
                        recompute=entry.recompute,
                    )
                )
                assert entry.num_micro_batches == result.num_micro_batches
                assert entry.iteration_time == pytest.approx(
                    result.iteration_time, abs=1e-9
                )
                assert entry.throughput == pytest.approx(
                    result.throughput, rel=1e-9
                )
                assert entry.bubble_ratio == pytest.approx(
                    result.bubble_ratio, abs=1e-9
                )

    def test_budget_prunes_monotonically(self):
        loose = small_plan(memory_budget_bytes=10 * GIB)
        tight = small_plan(memory_budget_bytes=3 * GIB)
        assert len(tight) <= len(loose)
        assert all(e.peak_memory_bytes <= 3 * GIB for e in tight)
        tight_cells = {(e.scheme, e.width, e.depth, e.micro_batch) for e in tight}
        loose_cells = {(e.scheme, e.width, e.depth, e.micro_batch) for e in loose}
        assert tight_cells <= loose_cells

    def test_budget_exactly_at_peak_keeps_the_candidate(self):
        """Boundary regression: a budget set to a candidate's *exact*
        modeled peak must keep that candidate. The peak is assembled by
        float accumulation, so a strict ``<=`` on the raw floats used to
        drop configurations whose peak equaled the budget on paper."""
        loose = small_plan(memory_budget_bytes=10 * GIB)
        top = loose[0]
        pinned = small_plan(memory_budget_bytes=top.peak_memory_bytes)
        cells = {(e.scheme, e.width, e.depth, e.micro_batch) for e in pinned}
        assert (top.scheme, top.width, top.depth, top.micro_batch) in cells
        assert all(
            e.peak_memory_bytes <= top.peak_memory_bytes * (1 + 1e-9)
            for e in pinned
        )

    def test_tight_budget_favors_memory_controllable_schemes(self):
        """Under a tight budget (offload axis off) the memory-controllable
        family must fill the top ranks the fast-but-hungry schedules
        vacate; with the host tier available, offload restores the fast
        schedules at no worse throughput."""
        tight = small_plan(
            num_workers=16, mini_batch=128, memory_budget_bytes=3 * GIB,
            offload=False,
        )
        assert tight[0].scheme in ("zb_vhalf", "zb_vmin", "zb_h1")
        offloaded = small_plan(
            num_workers=16, mini_batch=128, memory_budget_bytes=3 * GIB
        )
        assert offloaded[0].throughput >= tight[0].throughput

    def test_format_plan_renders_every_entry(self):
        entries = small_plan(top_k=4)
        text = format_plan(entries)
        for entry in entries:
            assert entry.label() in text


class TestFailureModes:
    def test_too_few_workers(self):
        with pytest.raises(ConfigurationError, match="at least two workers"):
            plan_configurations(PIZ_DAINT, BERT48, num_workers=1, mini_batch=64)

    def test_unknown_scheme_lists_available(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            plan_configurations(
                PIZ_DAINT, BERT48, num_workers=8, mini_batch=64,
                schemes=("megatron",),
            )

    def test_empty_scheme_list(self):
        with pytest.raises(ConfigurationError, match="empty scheme list"):
            plan_configurations(
                PIZ_DAINT, BERT48, num_workers=8, mini_batch=64, schemes=()
            )

    def test_no_factorization_of_p(self):
        """P=7 with 48 layers: depth 7 divides neither workers evenly into
        a chimera pair nor the layer count — no (W, D) survives."""
        with pytest.raises(ConfigurationError, match="no valid \\(W, D\\)"):
            plan_configurations(PIZ_DAINT, BERT48, num_workers=7, mini_batch=64)

    def test_no_factorization_message_is_actionable(self):
        with pytest.raises(ConfigurationError, match="min_depth"):
            plan_configurations(PIZ_DAINT, BERT48, num_workers=7, mini_batch=64)

    def test_no_micro_batch_fits_budget(self):
        """A sub-GiB budget cannot even hold the weights: every candidate
        OOMs and the error names the budget and the closest candidate."""
        with pytest.raises(ConfigurationError, match="memory.*budget") as err:
            small_plan(memory_budget_bytes=0.5 * GIB)
        assert "overshoots" in str(err.value)
        assert "raise the budget" in str(err.value)

    def test_bad_mini_batch(self):
        with pytest.raises(ConfigurationError, match="mini-batch"):
            plan_configurations(PIZ_DAINT, BERT48, num_workers=8, mini_batch=0)


class TestHarnessBudgetThreading:
    def cfg(self, budget):
        return ExperimentConfig(
            scheme="dapple",
            machine=PIZ_DAINT,
            workload=BERT48,
            width=2,
            depth=4,
            micro_batch=4,
            mini_batch=64,
            memory_budget_bytes=budget,
        )

    def test_budget_tightens_capacity(self):
        assert self.cfg(None).capacity_bytes == PIZ_DAINT.usable_memory_bytes
        assert self.cfg(2 * GIB).capacity_bytes == 2 * GIB
        # A budget looser than the device clamps to the hardware.
        assert self.cfg(99 * GIB).capacity_bytes == PIZ_DAINT.usable_memory_bytes

    def test_budget_can_force_recompute_or_oom(self):
        free = run_configuration(self.cfg(None))
        assert not free.oom
        squeezed = run_configuration(self.cfg(1.0 * GIB))
        assert squeezed.oom or squeezed.recompute

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="budget"):
            self.cfg(-1.0)


class TestPassAxes:
    """Schedule passes as planning axes: recompute on/off and fused comm."""

    def test_tight_budget_needs_the_recompute_pass(self):
        """Acceptance: under a tight budget (offload axis off) the planner
        selects a recompute configuration that the pass-less planner
        (``recompute=False``) must reject as OOM."""
        budget = dict(
            num_workers=8, mini_batch=64, memory_budget_bytes=1.5 * GIB
        )
        entries = plan_configurations(
            PIZ_DAINT, BERT48, offload=False, **budget
        )
        assert entries and all(e.recompute for e in entries)
        with pytest.raises(ConfigurationError, match="memory.*budget"):
            plan_configurations(
                PIZ_DAINT, BERT48, recompute=False, offload=False, **budget
            )

    def test_recompute_forced_on(self):
        entries = small_plan(recompute=True)
        assert entries and all(e.recompute for e in entries)

    def test_recompute_entries_match_harness(self):
        """A recompute plan entry is exactly the harness outcome — the
        pass runs through the same cached artifacts."""
        entry = small_plan(recompute=True, top_k=1)[0]
        cfg = ExperimentConfig(
            scheme=entry.scheme,
            machine=PIZ_DAINT,
            workload=BERT48,
            width=entry.width,
            depth=entry.depth,
            micro_batch=entry.micro_batch,
            mini_batch=64,
            recompute=True,
            lowered=False,
        )
        result = run_configuration(cfg)
        assert result.recompute
        assert result.throughput == pytest.approx(entry.throughput, rel=1e-9)
        assert result.iteration_time == pytest.approx(
            entry.iteration_time, rel=1e-9
        )

    def test_fused_ranking_matches_harness_and_feasible_set(self):
        """``fused=True`` ranks the same feasible set (fusion never
        changes memory) and each entry equals its harness outcome."""
        lowered = small_plan(lowered=True)
        fused = small_plan(lowered=True, fused=True)
        assert {e.label() for e in fused} == {e.label() for e in lowered}
        entry = fused[0]
        cfg = ExperimentConfig(
            scheme=entry.scheme,
            machine=PIZ_DAINT,
            workload=BERT48,
            width=entry.width,
            depth=entry.depth,
            micro_batch=entry.micro_batch,
            mini_batch=64,
            recompute=entry.recompute,
            lowered=True,
            fused=True,
        )
        result = run_configuration(cfg)
        assert result.throughput == pytest.approx(entry.throughput, rel=1e-9)

    def test_fused_requires_lowered(self):
        with pytest.raises(ConfigurationError, match="fused.*lowered"):
            small_plan(lowered=False, fused=True)
