"""The multiprocess planner worker pool (``repro.perf.workers``).

The contract mirrors ``plan_many``'s own: the process backend is a
performance feature, so pooled outcomes must match the in-process path
outcome for outcome — entries field for field, errors message for
message. On top of that sit the lifecycle guarantees the serving layer
leans on: graceful drain (queued work finishes, futures resolve, worker
processes join — no orphans), crash containment (a dead worker fails its
own future with :class:`WorkerCrashError` instead of hanging the
caller), and refusal of new work after ``stop()``.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48, GPT2_32
from repro.common.errors import ConfigurationError
from repro.perf.planner import PlanRequest, plan_many
from repro.perf.workers import PlannerWorkerPool, WorkerCrashError

GIB = 2**30

SYNC = ("chimera", "dapple", "zb_h1")


def request(**overrides) -> PlanRequest:
    base = dict(
        machine=PIZ_DAINT,
        workload=BERT48,
        num_workers=4,
        mini_batch=16,
        schemes=SYNC,
    )
    base.update(overrides)
    return PlanRequest(**base)


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.fixture(scope="module")
def pool():
    """One 2-worker pool for the whole module — spawn is the expensive
    part, and pool reuse across submissions is itself part of the
    contract under test."""
    with PlannerWorkerPool(2, name="test") as p:
        yield p


class TestParity:
    def test_shard_outcomes_match_in_process(self, pool):
        requests = [
            request(),
            request(mini_batch=32),
            request(machine=V100_CLUSTER, workload=GPT2_32, num_workers=8),
            request(memory_budget_bytes=6 * GIB),
            request(fused=True),
            request(recompute=True),
            request(top_k=2),
        ]
        reference = plan_many(requests)
        pooled = plan_many(requests, backend="process", pool=pool)
        assert [o.request for o in pooled] == requests
        for got, want in zip(pooled, reference):
            assert got.ok == want.ok
            assert got.entries == want.entries

    def test_error_messages_match_exactly(self, pool):
        requests = [
            request(num_workers=1),
            request(mini_batch=0),
            request(schemes=()),
            request(min_depth=5),
            request(memory_budget_bytes=0.05 * GIB),
            request(),  # one good request mixed in
        ]
        reference = plan_many(requests)
        pooled = plan_many(requests, backend="process", pool=pool)
        assert [o.ok for o in pooled] == [o.ok for o in reference]
        for got, want in zip(pooled, reference):
            if want.error is None:
                continue
            assert type(got.error) is type(want.error)
            assert str(got.error) == str(want.error)

    def test_duplicates_collapse_and_fan_back_out(self, pool):
        req = request()
        pooled = plan_many(
            [req, req, request(top_k=1), req], backend="process", pool=pool
        )
        assert len(pooled) == 4
        assert pooled[0].entries == pooled[1].entries == pooled[3].entries
        assert pooled[2].entries == pooled[0].entries[:1]

    def test_async_scheme_parity_through_pool(self, pool):
        """The steady-state fan-out inside a worker stays sequential
        (no nested pools) and still matches the in-process result."""
        req = request(schemes=("pipedream", "chimera"), mini_batch=8)
        [want] = plan_many([req], max_workers=1)
        [got] = plan_many([req], backend="process", pool=pool)
        assert got.ok and want.ok
        assert got.entries == want.entries

    def test_submit_steady_matches_in_process(self, pool):
        """The raw steady-state task kind the async fan-out uses: a
        pooled ``run_configuration`` equals the local call."""
        from repro.bench.harness import run_configuration
        from repro.perf.planner import _PlanContext, _prune_request
        from repro.schedules.registry import scheme_traits

        req = request(schemes=("pipedream", "chimera"), mini_batch=8)
        pruned = _prune_request(req, _PlanContext())
        cfgs = [
            s.cfg
            for s in pruned.survivors
            if not scheme_traits(s.cfg.scheme).synchronous
        ]
        assert cfgs, "expected at least one async survivor"
        for cfg in cfgs[:2]:
            want = run_configuration(cfg)
            got = pool.submit_steady(cfg).result()
            assert got.iteration_time == want.iteration_time
            assert got.throughput == want.throughput
            assert got.peak_memory_bytes == want.peak_memory_bytes
            assert got.pipeline == want.pipeline


class TestBackendRouting:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            plan_many([request()], backend="fork")

    def test_default_process_pool_is_created_and_reused(self):
        from repro.perf import workers

        workers.stop_default_pool()
        first = workers.get_default_pool(1)
        assert workers.get_default_pool(1) is first
        outcomes = plan_many([request()], max_workers=1, backend="process")
        assert outcomes[0].ok
        workers.stop_default_pool()
        assert first.stopped


class TestLifecycle:
    def test_stats_and_pids(self, pool):
        stats = pool.stats()
        assert stats.workers == 2
        assert stats.alive == 2
        assert len(stats.pids) == 2
        assert stats.pending == 0
        for pid in stats.pids:
            assert _alive(pid)

    def test_stop_drains_queued_work_then_joins(self):
        """Everything submitted before stop() completes — drain means
        finish, not cancel — and no worker process survives."""
        pool = PlannerWorkerPool(1, name="drain")
        futures = [
            pool.submit_plan([request(top_k=k + 1)]) for k in range(3)
        ]
        pids = pool.pids()
        pool.stop()
        for k, future in enumerate(futures):
            [outcome] = future.result(timeout=1)
            assert outcome.ok
            assert len(outcome.entries) <= k + 1
        deadline = time.monotonic() + 10
        while any(_alive(pid) for pid in pids):
            assert time.monotonic() < deadline, f"orphan workers: {pids}"
            time.sleep(0.05)
        assert pool.stats().alive == 0
        assert pool.stats().pending == 0

    def test_stopped_pool_refuses_new_work(self):
        pool = PlannerWorkerPool(1, name="refuse")
        pool.stop()
        assert pool.stopped
        with pytest.raises(WorkerCrashError, match="stopped"):
            pool.submit_plan([request()])
        pool.stop()  # idempotent

    def test_worker_count_validated(self):
        with pytest.raises(ConfigurationError, match="worker pool size"):
            PlannerWorkerPool(0)


class TestCrashContainment:
    def test_killed_worker_fails_future_not_hangs(self):
        """SIGKILL the only worker mid-task: the future must resolve
        with WorkerCrashError (never hang), and the pool must report the
        death instead of pretending to be healthy."""
        pool = PlannerWorkerPool(1, name="crash")
        try:
            # A cold worker warms caches first, so this runs for a while.
            future = pool.submit_plan(
                [request(num_workers=8, mini_batch=32, schemes=("zb_v",))]
            )
            (pid,) = pool.pids()
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(WorkerCrashError):
                future.result(timeout=60)
            assert pool.stats().alive == 0
        finally:
            pool.stop()
