"""Memory model, metrics, and the Gantt renderer."""

import pytest

from repro.common.errors import MemoryModelError
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.placement import StagePlacement
from repro.schedules.registry import build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.sim.memory import MemoryModel, analyze_memory, weight_versions
from repro.sim.metrics import (
    bubble_ratio,
    parallel_efficiency,
    throughput_samples_per_sec,
    worker_busy_times,
)


class TestMemoryModel:
    def test_recompute_stores_stash_only(self):
        plain = build_schedule("dapple", 4, 4)
        recomp = build_schedule("dapple", 4, 4, recompute=True)
        mm = MemoryModel(activation_bytes=1.0, stash_input_bytes=0.1)
        p = analyze_memory(plain, mm)
        r = analyze_memory(recomp, mm)
        assert r.peak_bytes < p.peak_bytes

    def test_recompute_transient_counted(self):
        """During a recomputed backward the full activation briefly lives."""
        recomp = build_schedule("gems", 4, 2, recompute=True)
        mm = MemoryModel(activation_bytes=1.0, stash_input_bytes=0.1)
        r = analyze_memory(recomp, mm)
        # 1 stash (0.1) rematerializing to 1.0 at the peak.
        assert r.workers[0].activation_peak_bytes == pytest.approx(1.0)

    def test_per_stage_weight_bytes(self):
        schedule = build_schedule("dapple", 2, 2)
        mm = MemoryModel(activation_bytes=0.0, weight_bytes=(5.0, 1.0))
        report = analyze_memory(schedule, mm)
        assert report.workers[0].weight_bytes == 5.0
        assert report.workers[1].weight_bytes == 1.0

    def test_weight_versions_per_scheme(self):
        pd = build_schedule("pipedream", 4, 4)
        bw = build_schedule("pipedream_2bw", 4, 4)
        sync = build_schedule("dapple", 4, 4)
        assert weight_versions(pd, 0) == 4 and weight_versions(pd, 3) == 1
        assert weight_versions(bw, 0) == 2
        assert weight_versions(sync, 0) == 1

    def test_imbalance_and_fits(self):
        report = analyze_memory(
            build_schedule("dapple", 4, 4), MemoryModel(activation_bytes=1.0)
        )
        assert report.imbalance == pytest.approx(4.0)
        assert report.fits(report.peak_bytes)
        assert not report.fits(report.peak_bytes - 0.5)

    def test_fits_absorbs_float_accumulation_drift(self):
        """A peak assembled by float additions must not be rejected against
        an exactly-equal budget: 0.1 + 0.2 > 0.3 in binary floats, and the
        planner's budget prune feeds exact peaks back in as capacities."""
        from repro.sim.memory import MemoryReport, WorkerMemory

        drifted = MemoryReport(workers=(WorkerMemory(0, 0.0, 0.1 + 0.2, 3.0),))
        assert drifted.peak_bytes > 0.3  # the classic drift
        assert drifted.fits(0.3)
        assert not drifted.fits(0.3 - 1e-6)

    def test_backward_without_forward_raises(self):
        placement = StagePlacement.linear(1)
        rows = [[Operation(OpKind.BACKWARD, 0, 0, micro_batches=(0,))]]
        schedule = Schedule(
            scheme="toy",
            placement=placement,
            num_micro_batches=1,
            worker_ops=freeze_worker_ops(rows),
        )
        with pytest.raises(MemoryModelError):
            analyze_memory(schedule, MemoryModel())

    def test_per_stage_sequence_out_of_range(self):
        mm = MemoryModel(activation_bytes=(1.0,))
        schedule = build_schedule("dapple", 2, 2)
        with pytest.raises(MemoryModelError):
            analyze_memory(schedule, mm)


class TestMetrics:
    def test_worker_busy_times_uniform_for_balanced(self):
        r = simulate(build_schedule("chimera", 4, 4), CostModel.practical())
        busy = worker_busy_times(r)
        assert all(b == pytest.approx(busy[0]) for b in busy)

    def test_throughput_definition(self):
        r = simulate(build_schedule("dapple", 2, 2), CostModel.practical())
        thr = throughput_samples_per_sec(r, micro_batch_size=4, data_parallel_width=3)
        assert thr == pytest.approx(2 * 4 * 3 / r.iteration_time)

    def test_async_default_steady_state(self):
        r = simulate(build_schedule("pipedream", 4, 32), CostModel.practical())
        assert bubble_ratio(r) < bubble_ratio(r, steady_state=False)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(100.0, 16, 400.0, 64) == pytest.approx(1.0)
        assert parallel_efficiency(100.0, 16, 200.0, 64) == pytest.approx(0.5)


class TestGantt:
    def test_renders_all_workers(self):
        text = render_gantt(build_schedule("chimera", 4, 4))
        for w in range(4):
            assert f"P{w}" in text

    def test_marks_backwards(self):
        text = render_gantt(build_schedule("dapple", 2, 2))
        assert "*" in text

    def test_reports_makespan(self):
        text = render_gantt(build_schedule("gpipe", 2, 2))
        assert "makespan" in text

    def test_accepts_simulation_result(self):
        r = simulate(build_schedule("gems", 4, 2), CostModel.practical())
        assert "gems" in render_gantt(r)
