"""Property-based tests for the NumPy kernels and collective algorithms."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.models import functional as Fn
from repro.models.layers import LayerNorm, Linear
from repro.models.loss import softmax_cross_entropy
from repro.runtime.collective_algorithms import (
    rabenseifner_allreduce,
    ring_allreduce,
)

SETTINGS = settings(max_examples=30, deadline=None)

small_floats = st.floats(
    min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False
)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=small_floats)


@SETTINGS
@given(x=arrays((3, 7)))
def test_softmax_is_distribution(x):
    y = Fn.softmax(x)
    assert np.all(y >= 0)
    np.testing.assert_allclose(y.sum(axis=-1), 1.0, atol=1e-12)


@SETTINGS
@given(x=arrays((2, 5)), shift=small_floats)
def test_softmax_shift_invariant(x, shift):
    np.testing.assert_allclose(Fn.softmax(x), Fn.softmax(x + shift), atol=1e-10)


@SETTINGS
@given(x=arrays((4, 6)))
def test_layernorm_output_standardized(x):
    y, _ = Fn.layernorm(x, np.ones(6), np.zeros(6))
    np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-9)


@SETTINGS
@given(x=arrays((2, 4, 5)), dy=arrays((2, 4, 3)))
def test_linear_backward_is_linear_in_dy(x, dy):
    """d(backward)/d(dy) linearity: backward(a*dy) == a*backward(dy)."""
    layer = Linear(5, 3, rng=np.random.default_rng(0))
    _, cache = layer.forward(x)
    layer.zero_grads()
    dx1 = layer.backward(dy, cache)
    layer.zero_grads()
    dx2 = layer.backward(2.0 * dy, cache)
    np.testing.assert_allclose(dx2, 2.0 * dx1, atol=1e-9)


@SETTINGS
@given(x=arrays((3, 6)))
def test_layernorm_grad_orthogonal_to_constant(x):
    """dx of LayerNorm sums to ~0 along the feature axis (projection
    property of the normalization backward)."""
    layer = LayerNorm(6)
    y, cache = layer.forward(x)
    layer.zero_grads()
    dx = layer.backward(np.ones_like(y), cache)
    np.testing.assert_allclose(dx.sum(axis=-1), 0.0, atol=1e-9)


@SETTINGS
@given(
    logits=arrays((2, 3, 5)),
    targets=hnp.arrays(np.int64, (2, 3), elements=st.integers(0, 4)),
)
def test_cross_entropy_gradient_rows_sum_to_zero(logits, targets):
    _, dlogits = softmax_cross_entropy(logits, targets)
    np.testing.assert_allclose(dlogits.sum(axis=-1), 0.0, atol=1e-12)


@SETTINGS
@given(
    logits=arrays((2, 3, 5)),
    targets=hnp.arrays(np.int64, (2, 3), elements=st.integers(0, 4)),
)
def test_cross_entropy_nonnegative(logits, targets):
    loss, _ = softmax_cross_entropy(logits, targets)
    assert loss >= 0.0


@SETTINGS
@given(
    r=st.sampled_from([1, 2, 3, 4, 5, 8]),
    n=st.integers(8, 64),
    seed=st.integers(0, 1000),
)
def test_ring_allreduce_equals_sum(r, n, seed):
    rng = np.random.default_rng(seed)
    bufs = [rng.standard_normal(n) for _ in range(r)]
    results, stats = ring_allreduce(bufs)
    expected = np.sum(bufs, axis=0)
    for res in results:
        np.testing.assert_allclose(res, expected, atol=1e-10)
    if r > 1:
        assert stats.rounds == 2 * (r - 1)


@SETTINGS
@given(
    power=st.integers(0, 4),
    n=st.integers(8, 64),
    seed=st.integers(0, 1000),
)
def test_rabenseifner_allreduce_equals_sum(power, n, seed):
    r = 2**power
    rng = np.random.default_rng(seed)
    bufs = [rng.standard_normal(n) for _ in range(r)]
    results, stats = rabenseifner_allreduce(bufs)
    expected = np.sum(bufs, axis=0)
    for res in results:
        np.testing.assert_allclose(res, expected, atol=1e-10)
    if r > 1:
        assert stats.rounds == 2 * power


@SETTINGS
@given(
    r=st.sampled_from([2, 4, 8]),
    seed=st.integers(0, 100),
)
def test_algorithms_agree(r, seed):
    rng = np.random.default_rng(seed)
    bufs = [rng.standard_normal(16) for _ in range(r)]
    ring_res, _ = ring_allreduce(bufs)
    rab_res, _ = rabenseifner_allreduce(bufs)
    np.testing.assert_allclose(ring_res[0], rab_res[0], atol=1e-10)
