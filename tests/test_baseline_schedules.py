"""GPipe, DAPPLE, GEMS, PipeDream, PipeDream-2BW — Table 2 signatures."""

import pytest

from repro.common.errors import ScheduleError
from repro.schedules import (
    build_schedule,
    build_dapple_schedule,
    build_gems_schedule,
    build_gpipe_schedule,
    build_pipedream_2bw_schedule,
    build_pipedream_schedule,
)
from repro.schedules.ir import OpKind
from repro.schedules.validate import validate_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio


@pytest.mark.parametrize("builder", [build_gpipe_schedule, build_dapple_schedule])
@pytest.mark.parametrize("depth,n", [(4, 4), (4, 8), (8, 8), (8, 16)])
def test_gpipe_dapple_bubble_formula(builder, depth, n):
    """Both incur 2(D-1) bubbles: ratio (D-1)/(N+D-1) per pass (Table 2)."""
    schedule = builder(depth, n)
    result = simulate(schedule, CostModel.practical())
    assert bubble_ratio(result) == pytest.approx((depth - 1) / (n + depth - 1))


@pytest.mark.parametrize("depth,n", [(4, 4), (8, 8)])
def test_gpipe_dapple_same_makespan_different_memory(depth, n):
    cost = CostModel.practical()
    gpipe = simulate(build_gpipe_schedule(depth, n), cost)
    dapple = simulate(build_dapple_schedule(depth, n), cost)
    assert gpipe.compute_makespan == pytest.approx(dapple.compute_makespan)
    mm = MemoryModel(activation_bytes=1.0)
    g = analyze_memory(build_gpipe_schedule(depth, n), mm)
    d = analyze_memory(build_dapple_schedule(depth, n), mm)
    assert max(w.activation_peak_units for w in g.workers) == n
    assert max(w.activation_peak_units for w in d.workers) == min(depth, n)


def test_gpipe_activation_proportional_to_n():
    mm = MemoryModel(activation_bytes=1.0)
    for n in (4, 8, 16):
        report = analyze_memory(build_gpipe_schedule(4, n), mm)
        assert all(w.activation_peak_units == n for w in report.workers)


def test_dapple_activation_decreases_along_pipeline():
    report = analyze_memory(
        build_dapple_schedule(4, 8), MemoryModel(activation_bytes=1.0)
    )
    units = [w.activation_peak_units for w in report.workers]
    assert units == [4, 3, 2, 1]


class TestGEMS:
    def test_two_replicas_opposite_directions(self):
        schedule = build_gems_schedule(4, 4)
        assert schedule.num_replicas == 2
        assert schedule.placement.direction(0) == 1
        assert schedule.placement.direction(1) == -1

    def test_one_activation_stash(self):
        """GEMS: at most one in-flight micro-batch -> Ma everywhere."""
        report = analyze_memory(
            build_gems_schedule(4, 8), MemoryModel(activation_bytes=1.0)
        )
        assert all(w.activation_peak_units == 1 for w in report.workers)

    @pytest.mark.parametrize("depth", [4, 8])
    def test_bubble_ratio_near_paper(self, depth):
        """(D-1)/(D+1/2), independent of N (Table 2)."""
        for n in (depth, 2 * depth):
            result = simulate(build_gems_schedule(depth, n), CostModel.practical())
            paper = (depth - 1) / (depth + 0.5)
            assert bubble_ratio(result) == pytest.approx(paper, rel=0.08)

    def test_bubbles_do_not_improve_with_n(self):
        r1 = simulate(build_gems_schedule(4, 4), CostModel.practical())
        r2 = simulate(build_gems_schedule(4, 16), CostModel.practical())
        assert bubble_ratio(r2) >= bubble_ratio(r1) - 0.02

    def test_odd_depth_rejected(self):
        with pytest.raises(ScheduleError):
            build_gems_schedule(5, 4)

    def test_validates(self):
        # Sync ops come from the registry's default insert_sync pass, not
        # the builder.
        validate_schedule(build_schedule("gems", 8, 6), require_sync_ops=True)


class TestPipeDream:
    def test_marked_asynchronous(self):
        assert not build_pipedream_schedule(4, 8).synchronous

    def test_sync_after_every_backward(self):
        schedule = build_pipedream_schedule(4, 4)
        for worker in range(4):
            ops = schedule.ops_on(worker)
            for i, op in enumerate(ops):
                if op.is_backward:
                    nxt = ops[i + 1]
                    assert nxt.kind is OpKind.ALLREDUCE
                    assert nxt.micro_batches == op.micro_batches

    def test_steady_state_nearly_bubble_free(self):
        schedule = build_pipedream_schedule(4, 32)
        result = simulate(schedule, CostModel.practical())
        assert bubble_ratio(result) < 0.12

    def test_weight_stash_memory_is_depth_minus_stage(self):
        mm = MemoryModel(
            activation_bytes=0.0, weight_bytes=1.0, weight_stash_bytes=1.0
        )
        report = analyze_memory(build_pipedream_schedule(4, 8), mm)
        assert [w.weight_bytes for w in report.workers] == [4.0, 3.0, 2.0, 1.0]

    def test_validates(self):
        validate_schedule(build_pipedream_schedule(4, 8))


class TestPipeDream2BW:
    def test_marked_asynchronous(self):
        assert not build_pipedream_2bw_schedule(4, 8).synchronous

    def test_double_buffered_weights(self):
        mm = MemoryModel(
            activation_bytes=0.0, weight_bytes=1.0, weight_stash_bytes=1.0
        )
        report = analyze_memory(build_pipedream_2bw_schedule(4, 8), mm)
        assert all(w.weight_bytes == 2.0 for w in report.workers)

    def test_steady_state_nearly_bubble_free(self):
        result = simulate(
            build_pipedream_2bw_schedule(4, 32), CostModel.practical()
        )
        assert bubble_ratio(result) < 0.12

    def test_validates(self):
        validate_schedule(
            build_schedule("pipedream_2bw", 8, 16), require_sync_ops=True
        )


@pytest.mark.parametrize(
    "builder",
    [
        build_gpipe_schedule,
        build_dapple_schedule,
        build_gems_schedule,
        build_pipedream_schedule,
        build_pipedream_2bw_schedule,
    ],
)
def test_builders_reject_bad_args(builder):
    with pytest.raises(ScheduleError):
        builder(0, 4)
    with pytest.raises(ScheduleError):
        builder(4, 0)
