"""In-process backend and the executable collective algorithms."""

import numpy as np
import pytest

from repro.common.errors import CommunicationError
from repro.runtime.backend import InProcessBackend
from repro.runtime.collective_algorithms import (
    rabenseifner_allreduce,
    ring_allreduce,
)
from repro.sim.collectives import rabenseifner_cost, ring_cost

RNG = np.random.default_rng(3)


class TestMailbox:
    def test_send_recv_roundtrip(self):
        b = InProcessBackend()
        payload = RNG.standard_normal(5)
        b.send(("a", 1), payload)
        np.testing.assert_array_equal(b.recv(("a", 1)), payload)

    def test_recv_consumes(self):
        b = InProcessBackend()
        b.send(("k",), np.zeros(1))
        b.recv(("k",))
        assert not b.can_recv(("k",))

    def test_double_send_rejected(self):
        b = InProcessBackend()
        b.send(("k",), np.zeros(1))
        with pytest.raises(CommunicationError):
            b.send(("k",), np.zeros(1))

    def test_recv_missing_rejected(self):
        with pytest.raises(CommunicationError):
            InProcessBackend().recv(("nope",))

    def test_traffic_accounting(self):
        b = InProcessBackend()
        b.send(("k",), np.zeros(8))
        assert b.messages_sent == 1
        assert b.bytes_sent == 64


class TestBackendCollectives:
    def test_sum_written_to_all_members(self):
        b = InProcessBackend()
        bufs = [np.ones(3) * (i + 1) for i in range(3)]
        for i, buf in enumerate(bufs):
            b.allreduce_contribute(("g",), ("m", i), [buf], group_size=3)
        assert b.allreduce_done(("g",))
        for buf in bufs:
            np.testing.assert_allclose(buf, 6.0)

    def test_incomplete_group_pending(self):
        b = InProcessBackend()
        b.allreduce_contribute(("g",), ("m", 0), [np.ones(1)], group_size=2)
        assert not b.allreduce_done(("g",))
        assert b.unresolved_collectives() == [("g",)]

    def test_double_contribution_rejected(self):
        b = InProcessBackend()
        b.allreduce_contribute(("g",), ("m", 0), [np.ones(1)], group_size=2)
        with pytest.raises(CommunicationError):
            b.allreduce_contribute(("g",), ("m", 0), [np.ones(1)], group_size=2)

    def test_group_size_mismatch_rejected(self):
        b = InProcessBackend()
        b.allreduce_contribute(("g",), ("m", 0), [np.ones(1)], group_size=2)
        with pytest.raises(CommunicationError):
            b.allreduce_contribute(("g",), ("m", 1), [np.ones(1)], group_size=3)


class TestAlgorithms:
    @pytest.mark.parametrize("r", [1, 2, 3, 4, 7, 8])
    def test_ring_computes_sum(self, r):
        bufs = [RNG.standard_normal(24) for _ in range(r)]
        results, _ = ring_allreduce(bufs)
        expected = np.sum(bufs, axis=0)
        for res in results:
            np.testing.assert_allclose(res, expected, atol=1e-12)

    @pytest.mark.parametrize("r", [1, 2, 4, 8, 16])
    def test_rabenseifner_computes_sum(self, r):
        bufs = [RNG.standard_normal(32) for _ in range(r)]
        results, _ = rabenseifner_allreduce(bufs)
        expected = np.sum(bufs, axis=0)
        for res in results:
            np.testing.assert_allclose(res, expected, atol=1e-12)

    def test_rabenseifner_requires_power_of_two(self):
        with pytest.raises(CommunicationError):
            rabenseifner_allreduce([np.ones(4)] * 3)

    @pytest.mark.parametrize("r", [2, 4, 8])
    def test_ring_accounting_matches_cost_model(self, r):
        """Executed rounds/bytes == the closed-form cost model terms."""
        n = 64
        bufs = [np.ones(n) for _ in range(r)]
        _, stats = ring_allreduce(bufs)
        assert stats.rounds == 2 * (r - 1)
        expected_bytes = 2 * (r - 1) / r * n * bufs[0].itemsize
        assert stats.bytes_per_rank == pytest.approx(expected_bytes)
        # The cost model with alpha=1, beta=1 counts the same two terms.
        cost = ring_cost(1.0, 1.0, n * bufs[0].itemsize, r)
        assert cost == pytest.approx(stats.rounds + stats.bytes_per_rank)

    @pytest.mark.parametrize("r", [2, 4, 8, 16])
    def test_rabenseifner_accounting_matches_cost_model(self, r):
        n = 64
        bufs = [np.ones(n) for _ in range(r)]
        _, stats = rabenseifner_allreduce(bufs)
        assert stats.rounds == 2 * int(np.log2(r))
        expected_bytes = 2 * (r - 1) / r * n * bufs[0].itemsize
        assert stats.bytes_per_rank == pytest.approx(expected_bytes)
        cost = rabenseifner_cost(1.0, 1.0, n * bufs[0].itemsize, r)
        assert cost == pytest.approx(stats.rounds + stats.bytes_per_rank)

    def test_empty_group_rejected(self):
        with pytest.raises(CommunicationError):
            ring_allreduce([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CommunicationError):
            ring_allreduce([np.ones(3), np.ones(4)])
