"""Machines, workloads, and the experiment harness."""

import pytest

from repro.bench.harness import (
    ExperimentConfig,
    best_result,
    format_table,
    run_configuration,
    sweep,
)
from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48, GPT2_32, GPT2_64
from repro.common.errors import ConfigurationError
from repro.sim.network import FlatTopology, HierarchicalTopology


class TestWorkloads:
    def test_bert48_params_close_to_table4(self):
        assert abs(BERT48.total_params - 669_790_012) / 669_790_012 < 0.01

    def test_gpt2_params_close_to_table4(self):
        assert abs(GPT2_64.total_params - 1_389_327_360) / 1_389_327_360 < 0.01

    def test_stage_profiles_cover_all_params(self):
        for workload in (BERT48, GPT2_64, GPT2_32):
            profiles = workload.stage_profiles(4, 2)
            assert sum(p.params for p in profiles) == workload.total_params

    def test_uneven_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            BERT48.stage_profiles(5, 1)

    def test_head_stage_heaviest_flops(self):
        profiles = GPT2_64.stage_profiles(8, 1)
        assert max(p.forward_flops for p in profiles) == profiles[-1].forward_flops

    def test_embedding_stage_heaviest_params(self):
        profiles = GPT2_64.stage_profiles(8, 1)
        assert max(p.params for p in profiles) == profiles[0].params

    def test_boundary_bytes_scale_with_micro_batch(self):
        assert BERT48.boundary_bytes(4) == 4 * BERT48.boundary_bytes(1)


class TestMachines:
    def test_piz_daint_flat_topology(self):
        assert isinstance(PIZ_DAINT.topology(), FlatTopology)

    def test_v100_hierarchical_topology(self):
        topo = V100_CLUSTER.topology()
        assert isinstance(topo, HierarchicalTopology)
        assert topo.p2p_time(0, 1, 1e9) < topo.p2p_time(7, 8, 1e9)

    def test_usable_memory_below_total(self):
        assert PIZ_DAINT.usable_memory_bytes < PIZ_DAINT.memory_bytes


class TestHarness:
    def _cfg(self, **kw):
        base = dict(
            scheme="chimera",
            machine=PIZ_DAINT,
            workload=BERT48,
            width=8,
            depth=4,
            micro_batch=8,
            mini_batch=512,
        )
        base.update(kw)
        return ExperimentConfig(**base)

    def test_micro_batch_count(self):
        assert self._cfg().num_micro_batches() == 8

    def test_indivisible_mini_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            self._cfg(mini_batch=500).num_micro_batches()

    def test_run_produces_throughput(self):
        r = run_configuration(self._cfg())
        assert r.throughput > 0
        assert 0 <= r.bubble_ratio < 1
        assert r.peak_memory_bytes > r.min_memory_bytes

    def test_auto_recompute_on_memory_pressure(self):
        r = run_configuration(
            self._cfg(
                scheme="gpipe", width=2, depth=16, micro_batch=16, mini_batch=2048
            )
        )
        assert r.recompute or r.oom

    def test_forced_recompute_respected(self):
        r = run_configuration(self._cfg(recompute=True))
        assert r.recompute

    def test_oom_reports_zero_throughput(self):
        r = run_configuration(
            self._cfg(
                scheme="gpipe",
                workload=GPT2_64,
                width=1,
                depth=32,
                micro_batch=4,
                mini_batch=512,
            )
        )
        if r.oom:
            assert r.throughput == 0.0

    def test_sweep_skips_invalid(self):
        configs = [
            self._cfg(),
            self._cfg(depth=6),  # 48 layers fine but 32 % 6 != 0 at width 8
            self._cfg(mini_batch=500),
        ]
        results = sweep(configs)
        assert len(results) >= 1

    def test_best_result_prefers_throughput(self):
        results = sweep([self._cfg(), self._cfg(micro_batch=4)])
        best = best_result(results)
        assert best is not None
        assert best.throughput == max(r.throughput for r in results)

    def test_chimera_options_forwarded(self):
        r = run_configuration(
            self._cfg(mini_batch=1024, options={"concat": "halving"})
        )
        assert r.throughput > 0

    def test_async_uses_steady_state_throughput(self):
        """PipeDream family throughput must not be charged the pipeline
        fill of a cold window."""
        r_async = run_configuration(
            self._cfg(scheme="pipedream_2bw", micro_batch=8)
        )
        assert r_async.throughput > 0


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table([["a", 1.0], ["bbbb", 22.5]], headers=["x", "y"])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        text = format_table([[0.1234, 12.5, 1234.5]], headers=["a", "b", "c"])
        assert "0.123" in text and "12.50" in text and "1234" in text
