"""Lowering pass: structure, timing parity, link contention, runtime parity."""

import numpy as np
import pytest

from repro.common.errors import ScheduleError, ValidationError
from repro.models.transformer import TransformerLMConfig
from repro.runtime.optimizers import SGD
from repro.runtime.trainer import PipelineTrainer
from repro.schedules.dependencies import build_dependency_graph
from repro.schedules.ir import Operation, OpKind, Schedule, freeze_worker_ops
from repro.schedules.lowering import is_lowered, lower_schedule
from repro.schedules.registry import available_schemes, build_schedule
from repro.schedules.validate import validate_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.gantt import render_gantt
from repro.sim.network import FlatTopology, HierarchicalTopology, LinkSpec
from repro.sim.trace import to_chrome_trace
from tests.conftest import make_micro_batches

ALL_SCHEMES = available_schemes()


def contention_free(alpha=0.3):
    """Finite latency, infinite bandwidth: zero channel occupancy."""
    return CostModel(
        forward_time=1.0,
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=0.0)),
        activation_message_bytes=1.0,
        stage_grad_bytes=50.0,
        data_parallel_width=2,
    )


def finite_links(alpha=0.3, beta=0.2):
    return contention_free(alpha).with_(
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=beta))
    )


class TestLoweringStructure:
    def test_marks_metadata(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        assert low.lowered and is_lowered(low)
        assert not is_lowered(build_schedule("dapple", 4, 4))

    def test_pairs_match_p2p_edges(self):
        s = build_schedule("chimera", 4, 4)
        edges = sum(1 for _ in build_dependency_graph(s).p2p_edges())
        low = lower_schedule(s)
        assert low.count(OpKind.SEND) == edges
        assert low.count(OpKind.RECV) == edges

    def test_lowered_graph_has_no_implicit_p2p(self):
        low = lower_schedule(build_schedule("chimera", 4, 4))
        g = build_dependency_graph(low)
        assert not list(g.p2p_edges())
        assert sum(1 for _ in g.transfer_edges()) == low.count(OpKind.SEND)

    def test_eager_send_sits_after_producer(self):
        """Every SEND directly follows an op that produced its payload."""
        low = lower_schedule(build_schedule("dapple", 4, 4))
        for ops in low.worker_ops:
            for prev, op in zip(ops, ops[1:]):
                if op.kind is OpKind.SEND:
                    anchor = prev
                    # Chains of sends hang off one producer.
                    i = ops.index(op)
                    while anchor.kind is OpKind.SEND:
                        i -= 1
                        anchor = ops[i - 1]
                    assert anchor.is_forward or anchor.is_backward

    def test_recv_sits_before_consumer(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        for ops in low.worker_ops:
            for op, nxt in zip(ops, ops[1:]):
                if op.kind is OpKind.RECV:
                    while nxt.kind is OpKind.RECV:
                        nxt = ops[ops.index(nxt) + 1]
                    assert nxt.is_forward or nxt.is_backward
                    assert nxt.stage == op.stage

    def test_compute_order_preserved(self):
        s = build_schedule("chimera", 4, 4)
        low = lower_schedule(s)
        for worker in range(s.num_workers):
            original = [op for op in s.ops_on(worker)]
            kept = [op for op in low.ops_on(worker) if not op.is_comm]
            assert kept == original

    def test_local_hops_not_lowered(self):
        """ZB-V folds chunks p-1 and p onto one worker: no comm ops there."""
        low = lower_schedule(build_schedule("zb_v", 4, 4))
        p = 4
        step = {"act": 1, "grad": -1}
        for _, op in low.comm_ops():
            if op.kind is OpKind.SEND:
                src, dst = op.stage, op.stage + step[op.payload]
            else:
                src, dst = op.stage - step[op.payload], op.stage
            assert {src, dst} != {p - 1, p}, f"fold hop lowered: {op.short()}"

    def test_double_lowering_rejected(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        with pytest.raises(ScheduleError):
            lower_schedule(low)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_all_schemes_validate_lowered(self, scheme):
        validate_schedule(lower_schedule(build_schedule(scheme, 4, 8)))

    @pytest.mark.parametrize(
        "options",
        [{"concat": "doubling"}, {"concat": "halving"}, {"num_down_pipelines": 2}],
    )
    def test_chimera_variants_lower(self, options):
        validate_schedule(lower_schedule(build_schedule("chimera", 8, 8, **options)))


class TestLoweringValidation:
    def _strip(self, schedule: Schedule, kind: OpKind, how_many: int = 1):
        rows = []
        removed = 0
        for ops in schedule.worker_ops:
            row = []
            for op in ops:
                if op.kind is kind and removed < how_many:
                    removed += 1
                    continue
                row.append(op)
            rows.append(row)
        assert removed == how_many
        from dataclasses import replace

        return replace(schedule, worker_ops=freeze_worker_ops(rows))

    def test_missing_send_rejected(self):
        low = self._strip(lower_schedule(build_schedule("dapple", 2, 2)), OpKind.SEND)
        with pytest.raises(ValidationError):
            validate_schedule(low)

    def test_missing_recv_rejected(self):
        low = self._strip(lower_schedule(build_schedule("dapple", 2, 2)), OpKind.RECV)
        with pytest.raises(ValidationError):
            validate_schedule(low)

    def test_duplicate_flow_send_rejected(self):
        """A stray SEND covering micro-batches another SEND already ships
        must fail validation, not crash the executor later."""
        from dataclasses import replace

        low = lower_schedule(build_schedule("chimera", 4, 8, concat="doubling"))
        donor = next(
            op
            for _, op in low.comm_ops()
            if op.kind is OpKind.SEND and len(op.micro_batches) > 1
        )
        stray = replace(donor, micro_batches=donor.micro_batches[:1])
        worker = low.worker_of(donor.replica, donor.stage)
        rows = [list(ops) for ops in low.worker_ops]
        rows[worker].append(stray)
        bad = replace(low, worker_ops=freeze_worker_ops(rows))
        with pytest.raises(ValidationError):
            validate_schedule(bad)

    def test_comm_ops_without_lowered_flag_rejected(self):
        from dataclasses import replace

        low = lower_schedule(build_schedule("dapple", 2, 2))
        unmarked = replace(low, metadata={})
        with pytest.raises(ValidationError):
            validate_schedule(unmarked)

    def test_comm_op_requires_payload(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.SEND, 0, 0, micro_batches=(0,))
        with pytest.raises(ScheduleError):
            Operation(OpKind.SEND, 0, 0, micro_batches=(0,), payload="bogus")

    def test_payload_on_compute_op_rejected(self):
        with pytest.raises(ScheduleError):
            Operation(OpKind.FORWARD, 0, 0, micro_batches=(0,), payload="act")

    def test_act_and_grad_sends_have_distinct_keys(self):
        a = Operation(OpKind.SEND, 0, 1, micro_batches=(0,), payload="act")
        g = Operation(OpKind.SEND, 0, 1, micro_batches=(0,), payload="grad")
        assert a.key() != g.key()


class TestTimingParity:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_contention_free_parity(self, scheme):
        """Infinite bandwidth, zero occupancy: lowering is timing-neutral."""
        s = build_schedule(scheme, 4, 8)
        low = lower_schedule(s)
        cm = contention_free()
        a, b = simulate(s, cm), simulate(low, cm)
        assert b.iteration_time == pytest.approx(a.iteration_time, abs=1e-9)
        assert b.compute_makespan == pytest.approx(a.compute_makespan, abs=1e-9)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_finite_links_only_add_time(self, scheme):
        s = build_schedule(scheme, 4, 8)
        low = lower_schedule(s)
        cm = finite_links()
        assert (
            simulate(low, cm).iteration_time
            >= simulate(s, cm).iteration_time - 1e-9
        )

    def test_no_topology_parity(self):
        s = build_schedule("chimera", 4, 4)
        cm = CostModel.practical()
        assert simulate(lower_schedule(s), cm).iteration_time == pytest.approx(
            simulate(s, cm).iteration_time
        )

    def test_blocking_sync_parity_contention_free(self):
        s = build_schedule("chimera", 4, 4)
        cm = contention_free()
        a = simulate(s, cm, blocking_sync=True)
        b = simulate(lower_schedule(s), cm, blocking_sync=True)
        assert b.iteration_time == pytest.approx(a.iteration_time, abs=1e-9)


class TestLinkContention:
    def test_transfers_queue_fifo_per_channel(self):
        cm = CostModel(
            forward_time=0.5,
            topology=FlatTopology(LinkSpec(alpha=0.0, beta=1.0)),
            activation_message_bytes=1.0,
        )
        low = lower_schedule(build_schedule("dapple", 2, 4))
        result = simulate(low, cm)
        by_channel: dict = {}
        for t in result.transfers:
            by_channel.setdefault(t.channel, []).append(t)
        assert any(len(ts) > 1 for ts in by_channel.values())
        for ts in by_channel.values():
            ts.sort(key=lambda t: t.start)
            for a, b in zip(ts, ts[1:]):
                assert b.start >= a.start + a.occupancy - 1e-12

    def test_queued_transfer_starts_after_launch(self):
        """The second activation send must wait for the first's bytes."""
        cm = CostModel(
            forward_time=0.5,
            topology=FlatTopology(LinkSpec(alpha=0.0, beta=1.0)),
            activation_message_bytes=1.0,
        )
        low = lower_schedule(build_schedule("dapple", 2, 4))
        result = simulate(low, cm)
        acts = [t for t in result.transfers if t.payload == "act"]
        acts.sort(key=lambda t: t.start)
        # F(mb1) on worker 0 ends at 1.0 but the wire is busy until 1.5.
        assert acts[0].start == pytest.approx(0.5)
        assert acts[1].start == pytest.approx(1.5)

    def test_half_duplex_slower_than_full(self):
        def cm(duplex):
            return CostModel(
                forward_time=1.0,
                topology=FlatTopology(
                    LinkSpec(alpha=0.1, beta=0.5), duplex=duplex
                ),
                activation_message_bytes=1.0,
            )

        low = lower_schedule(build_schedule("chimera", 2, 2))
        full = simulate(low, cm("full"))
        half = simulate(low, cm("half"))
        assert half.compute_makespan > full.compute_makespan

    def test_transfers_overlap_compute(self):
        cm = finite_links()
        low = lower_schedule(build_schedule("dapple", 4, 8))
        result = simulate(low, cm)
        overlapped = 0
        for t in result.transfers:
            for timed in result.timed_ops_on(t.src_worker):
                if timed.start < t.end and t.start < timed.end:
                    overlapped += 1
                    break
        assert overlapped > 0

    def test_collectives_wait_for_inflight_transfers(self):
        cm = CostModel(
            forward_time=1.0,
            topology=FlatTopology(LinkSpec(alpha=0.0, beta=4.0)),
            activation_message_bytes=1.0,
            stage_grad_bytes=10.0,
            data_parallel_width=2,
        )
        low = lower_schedule(build_schedule("dapple", 2, 2))
        result = simulate(low, cm)
        assert result.collectives
        for c in result.collectives:
            for t in result.transfers:
                if t.occupancy <= 0:
                    continue
                if t.src_worker in c.workers or t.dst_worker in c.workers:
                    busy = (t.start, t.start + t.occupancy)
                    assert not (busy[0] <= c.start < busy[1]), (
                        f"collective at {c.start} inside transfer occupancy {busy}"
                    )

    @pytest.mark.parametrize("scheme", ["pipedream", "chimera"])
    def test_blocking_collectives_consistent_with_worker_release(self, scheme):
        """blocking_sync on a lowered schedule: a worker blocked on a
        collective may not run compute before the collective's recorded
        end (regression: the in-flight-transfer push applied to blocking
        records while workers were released without it)."""
        cm = CostModel(
            forward_time=1.0,
            topology=FlatTopology(LinkSpec(alpha=0.05, beta=0.5)),
            activation_message_bytes=1.0,
            stage_grad_bytes=50.0,
            data_parallel_width=2,
        )
        low = lower_schedule(build_schedule(scheme, 4, 4))
        r = simulate(low, cm, blocking_sync=True)
        assert r.collectives
        for c in r.collectives:
            for w in c.workers:
                for t in r.timed_ops_on(w):
                    if t.start > max(c.launch_times) - 1e-12:
                        assert t.start >= c.end - 1e-9, (
                            f"{t.op.short()} on P{w} starts at {t.start} "
                            f"inside blocking collective [{c.start},{c.end})"
                        )
            # ...and the blocking collective itself respected in-flight
            # transfer occupancy on its members' interfaces.
            for t in r.transfers:
                if t.occupancy <= 0:
                    continue
                if t.src_worker in c.workers or t.dst_worker in c.workers:
                    assert not (t.start <= c.start < t.start + t.occupancy - 1e-12), (
                        f"blocking collective at {c.start} inside transfer "
                        f"occupancy [{t.start},{t.start + t.occupancy})"
                    )

    def test_comm_launch_overhead_charged_to_worker(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        base = simulate(low, contention_free())
        heavy = simulate(low, contention_free().with_(comm_launch_overhead=0.25))
        assert heavy.compute_makespan > base.compute_makespan

    def test_hierarchical_inter_node_hop_contends(self):
        """Crossing the node boundary costs more than staying inside."""
        def topo(gpus):
            return HierarchicalTopology(
                intra=LinkSpec(0.0, 0.01),
                inter=LinkSpec(0.0, 2.0),
                gpus_per_node=gpus,
            )

        low = lower_schedule(build_schedule("dapple", 4, 4))
        inside = simulate(
            low,
            CostModel(
                forward_time=1.0, topology=topo(4), activation_message_bytes=1.0
            ),
        )
        split = simulate(
            low,
            CostModel(
                forward_time=1.0, topology=topo(2), activation_message_bytes=1.0
            ),
        )
        assert split.compute_makespan > inside.compute_makespan


class TestRendering:
    def test_gantt_comm_lanes_for_lowered(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        out = render_gantt(low, cost_model=finite_links(), time_step=0.5)
        assert "P0>" in out
        assert "a0>1" in out
        assert "p2p transfers:" in out

    def test_gantt_no_comm_lanes_without_wire_time(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        out = render_gantt(low, cost_model=CostModel.practical())
        assert "P0>" not in out

    def test_trace_exports_p2p_lane(self):
        low = lower_schedule(build_schedule("dapple", 4, 4))
        events = to_chrome_trace(simulate(low, finite_links()))
        p2p = [e for e in events if e["cat"] == "p2p"]
        assert len(p2p) == low.count(OpKind.SEND)
        assert all(e["pid"] == 2 for e in p2p)
        assert {"payload", "dst_worker", "occupancy"} <= set(p2p[0]["args"])

    def test_trace_skips_comm_launch_ops(self):
        low = lower_schedule(build_schedule("dapple", 2, 2))
        events = to_chrome_trace(simulate(low, finite_links()))
        compute = [e for e in events if e["cat"] in ("forward", "backward")]
        assert len(compute) == sum(1 for _ in low.compute_ops())


class TestRuntimeParity:
    @pytest.fixture
    def config(self):
        return TransformerLMConfig(
            num_layers=4, dim=16, heads=2, vocab=19, seq=6, seed=7
        )

    @pytest.mark.parametrize(
        "scheme,depth", [("chimera", 4), ("dapple", 4), ("zb_v", 2)]
    )
    def test_lowered_training_bit_identical(self, config, scheme, depth):
        kw = dict(
            depth=depth, num_micro_batches=4, optimizer_factory=lambda: SGD(0.05)
        )
        a = PipelineTrainer(config, scheme=scheme, **kw)
        b = PipelineTrainer(config, scheme=scheme, lowered=True, **kw)
        for it in range(2):
            mbs = make_micro_batches(config, 4, 2, seed=it)
            assert a.train_step(mbs) == b.train_step(mbs)
        for x, y in zip(a.full_model_layers(), b.full_model_layers()):
            for k in x.params:
                assert np.array_equal(x.params[k], y.params[k])

    def test_lowered_pipedream_stays_stale_but_identical(self, config):
        kw = dict(depth=4, num_micro_batches=4, optimizer_factory=lambda: SGD(0.05))
        a = PipelineTrainer(config, scheme="pipedream", **kw)
        b = PipelineTrainer(config, scheme="pipedream", lowered=True, **kw)
        for it in range(3):
            mbs = make_micro_batches(config, 4, 2, seed=it)
            assert a.train_step(mbs) == b.train_step(mbs)

    def test_lowered_executor_message_count_unchanged(self, config):
        kw = dict(depth=4, num_micro_batches=4, optimizer_factory=lambda: SGD(0.05))
        a = PipelineTrainer(config, scheme="dapple", **kw)
        b = PipelineTrainer(config, scheme="dapple", lowered=True, **kw)
        mbs = make_micro_batches(config, 4, 2, seed=0)
        a.train_step(mbs)
        b.train_step(mbs)
        assert (
            b.executor.backend.messages_sent == a.executor.backend.messages_sent
        )


class TestCLI:
    def test_show_lowered(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["show", "--scheme", "dapple", "-D", "4", "-N", "4",
                         "--lower"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_show_lowered_with_link_model_renders_lanes(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["show", "--scheme", "dapple", "-D", "4", "-N", "4",
                       "--lower", "--link-alpha", "0.25",
                       "--link-beta", "0.25"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P0>" in out and "a0>1" in out

    def test_trace_lowered_with_link_model_has_wire_time(self, tmp_path):
        from repro.cli import main as cli_main
        import json

        out_file = tmp_path / "t.json"
        rc = cli_main(["trace", "-D", "4", "-N", "4", "--lower",
                       "--link-alpha", "0.1", "--link-beta", "0.1",
                       "-o", str(out_file)])
        assert rc == 0
        p2p = [e for e in json.loads(out_file.read_text())["traceEvents"]
               if e["cat"] == "p2p"]
        assert p2p and all(e["dur"] > 1.0 for e in p2p)

    def test_trace_lowered(self, tmp_path, capsys):
        from repro.cli import main as cli_main
        import json

        out_file = tmp_path / "t.json"
        rc = cli_main(["trace", "-D", "4", "-N", "4", "--lower",
                       "--link-alpha", "0.1", "-o", str(out_file)])
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert any(e["cat"] == "p2p" for e in payload["traceEvents"])

    def test_trace_free_links_has_no_phantom_p2p_events(self, tmp_path):
        from repro.cli import main as cli_main
        import json

        out_file = tmp_path / "t.json"
        rc = cli_main(["trace", "-D", "4", "-N", "4", "--lower",
                       "-o", str(out_file)])
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert not any(e["cat"] == "p2p" for e in payload["traceEvents"])

    def test_simulate_lowered(self, capsys):
        from repro.cli import main as cli_main

        rc = cli_main(["simulate", "--scheme", "chimera", "-W", "8", "-D", "4",
                       "-B", "8", "--lower"])
        assert rc == 0
        assert "throughput" in capsys.readouterr().out

    def test_harness_lowered_config(self):
        from repro.bench.harness import ExperimentConfig, run_configuration
        from repro.bench.machines import PIZ_DAINT
        from repro.bench.workloads import BERT48

        base = dict(
            scheme="chimera", machine=PIZ_DAINT, workload=BERT48,
            width=2, depth=4, micro_batch=8, mini_batch=128,
        )
        r0 = run_configuration(ExperimentConfig(**base))
        r1 = run_configuration(ExperimentConfig(lowered=True, **base))
        assert r1.iteration_time >= r0.iteration_time - 1e-9
