"""Zero-bubble schedules (ZB-H1/ZB-V and the memory-controllable
ZB-vhalf/ZB-vmin): signatures, regression vs DAPPLE, training parity."""

import numpy as np
import pytest

from repro.common.errors import ScheduleError
from repro.models.reference import SequentialTrainer
from repro.models.transformer import build_transformer_layers
from repro.runtime.optimizers import SGD
from repro.runtime.trainer import PipelineTrainer
from repro.schedules.analysis import (
    activation_interval_formula,
    bubble_ratio_formula,
    scheme_properties,
)
from repro.schedules.ir import OpKind
from repro.schedules.placement import StagePlacement
from repro.schedules.registry import build_schedule
from repro.schedules.validate import validate_schedule
from repro.schedules.lowering import lower_schedule
from repro.schedules.zero_bubble import (
    build_zb_h1_schedule,
    build_zb_v_schedule,
    build_zb_vhalf_schedule,
    build_zb_vmin_schedule,
    stable_pattern,
)
from repro.sim.cost import CostModel
from repro.sim.engine import simulate
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio
from tests.conftest import make_micro_batches

SHAPES = [(2, 4), (4, 4), (4, 8), (8, 8), (8, 16)]


class TestVShapedPlacement:
    def test_folds_chunks_over_workers(self):
        p = StagePlacement.vshaped(4)
        assert p.num_stages == 8 and p.num_workers == 4
        assert [p.worker_of(0, s) for s in range(8)] == [0, 1, 2, 3, 3, 2, 1, 0]
        # Worker 0 hosts the first and the last chunk.
        assert p.stages_on_worker(0) == ((0, 0), (0, 7))

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ScheduleError):
            StagePlacement.vshaped(0)


ALL_ZB_BUILDERS = [
    build_zb_h1_schedule,
    build_zb_v_schedule,
    build_zb_vhalf_schedule,
    build_zb_vmin_schedule,
]


@pytest.mark.parametrize("builder", ALL_ZB_BUILDERS)
class TestZeroBubbleStructure:
    @pytest.mark.parametrize("depth,n", SHAPES)
    def test_validates_with_sync(self, builder, depth, n):
        # Sync placement is the registry's insert_sync pass, not the
        # builder's job.
        scheme = builder(2, 2).scheme
        validate_schedule(build_schedule(scheme, depth, n), require_sync_ops=True)

    @pytest.mark.parametrize("depth,n", [(4, 8)])
    def test_every_backward_is_split(self, builder, depth, n):
        schedule = builder(depth, n)
        assert schedule.count(OpKind.BACKWARD) == 0
        expected = schedule.num_stages * n
        assert schedule.count(OpKind.BACKWARD_INPUT) == expected
        assert schedule.count(OpKind.BACKWARD_WEIGHT) == expected

    def test_marked_synchronous(self, builder):
        assert builder(4, 8).synchronous

    def test_rejects_bad_args(self, builder):
        with pytest.raises(ScheduleError):
            builder(0, 4)
        with pytest.raises(ScheduleError):
            builder(4, 0)


@pytest.mark.parametrize("scheme", ["zb_h1", "zb_v"])
@pytest.mark.parametrize("depth,n", SHAPES)
class TestZeroBubbleRegression:
    def test_strictly_lower_bubble_than_dapple(self, scheme, depth, n):
        """The acceptance bar: at equal depth / micro-batches the zero-bubble
        schedules must beat synchronous 1F1B's bubble ratio outright."""
        cost = CostModel.practical()
        zb = simulate(build_schedule(scheme, depth, n), cost)
        dapple = simulate(build_schedule("dapple", depth, n), cost)
        assert bubble_ratio(zb) < bubble_ratio(dapple)

    def test_bubble_tracks_formula(self, scheme, depth, n):
        """ZB-H1's 2(D-1)/(3N + 2(D-1)) is exact; ZB-V's asymptote is met
        within a couple of greedy time units."""
        result = simulate(build_schedule(scheme, depth, n), CostModel.practical())
        formula = bubble_ratio_formula(scheme, depth, n)
        if scheme == "zb_h1":
            assert bubble_ratio(result) == pytest.approx(formula)
        else:
            assert bubble_ratio(result) == pytest.approx(formula, abs=0.02)

    def test_activation_interval_formula_exact(self, scheme, depth, n):
        report = analyze_memory(
            build_schedule(scheme, depth, n), MemoryModel(activation_bytes=1.0)
        )
        units = [w.activation_peak_units for w in report.workers]
        lo, hi = activation_interval_formula(scheme, depth, n)
        assert min(units) == pytest.approx(lo)
        assert max(units) == pytest.approx(hi)


class TestZeroBubbleSignatures:
    def test_zb_h1_same_memory_as_dapple(self):
        """ZB-H1's cap preserves the 1F1B activation signature exactly."""
        mm = MemoryModel(activation_bytes=1.0)
        h1 = analyze_memory(build_zb_h1_schedule(4, 8), mm)
        assert [w.activation_peak_units for w in h1.workers] == [4, 3, 2, 1]

    def test_zb_h1_makespan_closed_form(self):
        for depth, n in SHAPES:
            result = simulate(
                build_zb_h1_schedule(depth, n), CostModel.practical()
            )
            assert result.compute_makespan == pytest.approx(3 * n + 2 * (depth - 1))

    def test_zb_v_constant_memory_in_n(self):
        mm = MemoryModel(activation_bytes=1.0)
        peaks = []
        for n in (8, 16, 32):
            report = analyze_memory(build_zb_v_schedule(4, n), mm)
            units = [w.activation_peak_units for w in report.workers]
            assert min(units) == max(units)  # perfectly balanced
            peaks.append(max(units))
        assert peaks == [8, 8, 8]  # 2D chunk stashes, independent of N

    def test_max_in_flight_tightens_memory(self):
        """The cap trades bubble time for activation memory on ZB-H1."""
        for cap in (1, 2, 3):
            schedule = build_schedule("zb_h1", 4, 8, max_in_flight=cap)
            validate_schedule(schedule, require_sync_ops=True)
            report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
            assert max(w.activation_peak_units for w in report.workers) <= cap

    def test_zb_v_cap_is_best_effort_at_the_turn(self):
        """ZB-V's worker 0 hosts both ends of the V; a cap below the round
        trip is relaxed just enough to keep the pipeline deadlock-free."""
        schedule = build_schedule("zb_v", 4, 8, max_in_flight=6)
        validate_schedule(schedule, require_sync_ops=True)
        report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
        units = [w.activation_peak_units for w in report.workers]
        assert max(units[1:]) <= 6  # enforced away from the turn
        assert units[0] <= 2 * 4  # never beyond the default budget

    def test_scheme_properties_bundle(self):
        props = scheme_properties("zb_h1", 8, 8)
        assert props.synchronous
        assert props.weight_copies == 1.0
        assert props.bubble_ratio == pytest.approx(14 / 38)

    def test_recompute_inserts_explicit_ops(self):
        """The recompute pass precedes each first backward (the Bi half)
        with one RECOMPUTE op; no flags are stamped."""
        schedule = build_schedule("zb_h1", 4, 4, recompute=True)
        assert not any(op.recompute for _, op in schedule.all_ops())
        remats = schedule.count(OpKind.RECOMPUTE)
        assert remats == schedule.count(OpKind.BACKWARD_INPUT)
        validate_schedule(schedule)


class TestMemoryControllable:
    """ZB-vhalf / ZB-vmin: the controllable-memory stable-pattern family."""

    DEPTHS = (2, 4, 8)

    @pytest.mark.parametrize("scheme", ["zb_vhalf", "zb_vmin"])
    @pytest.mark.parametrize("depth", DEPTHS)
    def test_validates_lowers_and_simulates(self, scheme, depth):
        """Acceptance: both variants validate, lower, and simulate for
        D in {2, 4, 8}."""
        schedule = build_schedule(scheme, depth, 2 * depth)
        validate_schedule(schedule, require_sync_ops=True)
        lowered = lower_schedule(schedule)
        validate_schedule(lowered)
        for s in (schedule, lowered):
            result = simulate(s, CostModel.practical())
            assert result.compute_makespan > 0

    @pytest.mark.parametrize("depth", DEPTHS)
    @pytest.mark.parametrize("n", [2, 8, 16])
    def test_peak_memory_ordering_vmin_vhalf_zbv(self, depth, n):
        """Acceptance: measured peak activation memory respects
        vmin <= vhalf <= zb_v at equal (D, N)."""
        mm = MemoryModel(activation_bytes=1.0)

        def peak(scheme):
            report = analyze_memory(build_schedule(scheme, depth, n), mm)
            return max(w.activation_peak_units for w in report.workers)

        assert peak("zb_vmin") <= peak("zb_vhalf") <= peak("zb_v")

    def test_vhalf_roughly_halves_and_vmin_roughly_thirds_zb_v(self):
        """The headline claim at a saturated pipeline (N >> D): vhalf sits
        near half of ZB-V's 2D chunk budget (D + 2), vmin near a third
        (~2D/3 + 2)."""
        mm = MemoryModel(activation_bytes=1.0)
        for depth in (8, 12):
            vhalf = analyze_memory(build_zb_vhalf_schedule(depth, 3 * depth), mm)
            vmin = analyze_memory(build_zb_vmin_schedule(depth, 3 * depth), mm)
            assert max(w.activation_peak_units for w in vhalf.workers) == depth + 2
            assert (
                max(w.activation_peak_units for w in vmin.workers)
                <= 2 * depth / 3 + 3
            )

    @pytest.mark.parametrize("depth", DEPTHS)
    def test_makespan_closed_forms(self, depth):
        """Unit-cost makespans: 6N + max(0, 4D + i - 5) for vmin (i = 2
        when 3 | D) and 6N + (7D - 4)/2 for even D on vhalf, exact for
        N >= D."""
        n = 2 * depth
        vmin = simulate(build_zb_vmin_schedule(depth, n), CostModel.practical())
        interval = 2 if depth % 3 == 0 else 0
        assert vmin.compute_makespan == pytest.approx(
            6 * n + max(0, 4 * depth + interval - 5)
        )
        vhalf = simulate(build_zb_vhalf_schedule(depth, n), CostModel.practical())
        assert vhalf.compute_makespan == pytest.approx(6 * n + (7 * depth - 4) / 2)

    @pytest.mark.parametrize("depth", [3, 6, 9, 12])
    @pytest.mark.parametrize("n", [1, 2, 5])
    def test_vmin_bubble_formula_exact_at_interval_depths(self, depth, n):
        """Regression: when 3 | D the interval correction only applies for
        N >= 2 (a single micro-batch has nothing to collide with), and the
        analytic bubble must track the simulation exactly either way."""
        result = simulate(build_zb_vmin_schedule(depth, n), CostModel.practical())
        assert bubble_ratio(result) == pytest.approx(
            bubble_ratio_formula("zb_vmin", depth, n)
        )
        interval = 2 if n >= 2 else 0
        assert result.compute_makespan == pytest.approx(
            6 * n + max(0, 4 * depth + interval - 5)
        )

    @pytest.mark.parametrize("scheme", ["zb_vhalf", "zb_vmin"])
    def test_stable_pattern_collision_free(self, scheme):
        """Each worker's four streams occupy distinct tick residues mod 6,
        so micro-batches interleave without collisions for every N."""
        for depth in range(1, 33):
            for row in stable_pattern(scheme, depth):
                assert len(row) == 4
                assert all(t >= 0 for t in row)
                assert len({t % 6 for t in row}) == 4

    def test_stable_pattern_rejects_unknown_scheme(self):
        with pytest.raises(ScheduleError, match="no stable pattern"):
            stable_pattern("zb_h1", 4)

    @pytest.mark.parametrize("scheme", ["zb_vhalf", "zb_vmin"])
    def test_recompute_inserts_explicit_ops(self, scheme):
        schedule = build_schedule(scheme, 4, 4, recompute=True)
        assert not any(op.recompute for _, op in schedule.all_ops())
        assert schedule.count(OpKind.RECOMPUTE) == schedule.count(
            OpKind.BACKWARD_INPUT
        )
        validate_schedule(schedule)

    @pytest.mark.parametrize("scheme", ["zb_vhalf", "zb_vmin"])
    def test_constant_memory_in_n(self, scheme):
        mm = MemoryModel(activation_bytes=1.0)
        peaks = []
        for n in (12, 24, 48):
            report = analyze_memory(build_schedule(scheme, 4, n), mm)
            peaks.append(max(w.activation_peak_units for w in report.workers))
        assert peaks[0] == peaks[1] == peaks[2]


class TestZeroBubbleTraining:
    def run_pair(self, tiny_config, scheme, depth, n, iters=3, **kw):
        opt = lambda: SGD(0.05)
        trainer = PipelineTrainer(
            tiny_config,
            scheme=scheme,
            depth=depth,
            num_micro_batches=n,
            optimizer_factory=opt,
            **kw,
        )
        ref = SequentialTrainer(build_transformer_layers(tiny_config), opt())
        lp, ls = [], []
        for it in range(iters):
            mbs = make_micro_batches(
                tiny_config, n * kw.get("width", 1), 2, seed=100 + it
            )
            lp.append(trainer.train_step(mbs))
            ls.append(ref.train_step(mbs))
        return trainer, ref, lp, ls

    @staticmethod
    def max_weight_diff(trainer, ref):
        return max(
            float(np.abs(a.params[k] - b.params[k]).max())
            for a, b in zip(trainer.full_model_layers(), ref.layers)
            for k in a.params
        )

    @pytest.mark.parametrize(
        "scheme,depth",
        [("zb_h1", 4), ("zb_v", 2), ("zb_vhalf", 2), ("zb_vmin", 2)],
    )
    def test_matches_sequential_sgd(self, tiny_config, scheme, depth):
        trainer, ref, lp, ls = self.run_pair(tiny_config, scheme, depth, 4)
        assert lp == pytest.approx(ls, abs=1e-9)
        assert self.max_weight_diff(trainer, ref) < 1e-10

    @pytest.mark.parametrize("scheme,depth", [("zb_h1", 4), ("zb_v", 2)])
    def test_loss_parity_with_fused_dapple(self, tiny_config, scheme, depth):
        """Acceptance: split-backward training lands on the same losses as
        fused-backward DAPPLE within 1e-6."""
        _, _, zb_losses, _ = self.run_pair(tiny_config, scheme, depth, 8)
        _, _, dapple_losses, _ = self.run_pair(tiny_config, "dapple", 4, 8)
        assert zb_losses == pytest.approx(dapple_losses, abs=1e-6)

    def test_zb_h1_recompute_matches_sgd(self, tiny_config):
        trainer, ref, _, _ = self.run_pair(
            tiny_config, "zb_h1", 4, 4, recompute=True
        )
        assert self.max_weight_diff(trainer, ref) < 1e-10

    def test_zb_h1_data_parallel_width(self, tiny_config):
        trainer, ref, lp, ls = self.run_pair(tiny_config, "zb_h1", 4, 4, width=2)
        assert lp == pytest.approx(ls, abs=1e-9)
        assert self.max_weight_diff(trainer, ref) < 1e-10
        assert trainer.replicas_in_sync(atol=1e-12)

    def test_zb_v_partitions_double_stages(self, tiny_config):
        trainer, _, _, _ = self.run_pair(tiny_config, "zb_v", 2, 4)
        assert trainer.schedule.num_stages == 4
        # Worker 0 hosts the first and last chunk of the single replica.
        assert trainer.schedule.replicas_hosted_by(0) == ((0, 0), (0, 3))
