"""Discrete-event engine: timing semantics, p2p delays, sync overlap."""

import pytest

from repro.common.errors import ScheduleError
from repro.schedules.lowering import lower_schedule
from repro.schedules.registry import available_schemes, build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate, simulate_polling
from repro.sim.network import FlatTopology, HierarchicalTopology, LinkSpec


class TestComputeTiming:
    def test_single_micro_batch_serial_chain(self):
        """One micro-batch: D forwards then D backwards, strictly serial."""
        s = build_schedule("dapple", 4, 1)
        r = simulate(s, CostModel.practical())
        assert r.compute_makespan == pytest.approx(4 * 1 + 4 * 2)

    def test_worker_order_respected(self):
        s = build_schedule("dapple", 4, 4)
        r = simulate(s, CostModel.practical())
        for w in range(4):
            timed = r.timed_ops_on(w)
            for a, b in zip(timed, timed[1:]):
                assert b.start >= a.end - 1e-12

    def test_dependencies_respected(self):
        s = build_schedule("chimera", 4, 4)
        r = simulate(s, CostModel.practical())
        from repro.schedules.dependencies import build_dependency_graph

        g = build_dependency_graph(s)
        for key, edges in g.deps.items():
            if key not in r.timed:
                continue
            for e in edges:
                if e.src in r.timed and r.timed[key].op.is_compute:
                    assert r.timed[key].start >= r.timed[e.src].end - 1e-12

    def test_backward_ratio_scales_makespan(self):
        s = build_schedule("gpipe", 2, 2)
        fast = simulate(s, CostModel(forward_time=1.0, backward_ratio=1.0))
        slow = simulate(s, CostModel(forward_time=1.0, backward_ratio=3.0))
        assert slow.compute_makespan > fast.compute_makespan

    def test_recompute_ratio_applies(self):
        plain = simulate(build_schedule("dapple", 4, 4), CostModel.practical())
        recomp = simulate(
            build_schedule("dapple", 4, 4, recompute=True), CostModel.practical()
        )
        assert recomp.compute_makespan > plain.compute_makespan

    def test_stage_scale_heterogeneity(self):
        cost = CostModel(forward_time=1.0, stage_scale=(1.0, 3.0))
        r = simulate(build_schedule("dapple", 2, 4), cost)
        hom = simulate(build_schedule("dapple", 2, 4), CostModel.practical())
        assert r.compute_makespan > hom.compute_makespan

    def test_busy_plus_bubble_equals_makespan(self):
        s = build_schedule("chimera", 8, 8)
        r = simulate(s, CostModel.practical())
        for w in range(8):
            assert r.busy_time(w) + r.bubble_time(w) == pytest.approx(
                r.compute_makespan
            )


class TestP2P:
    def _cost(self, alpha):
        topo = FlatTopology(LinkSpec(alpha=alpha, beta=0.0))
        return CostModel(
            forward_time=1.0, topology=topo, activation_message_bytes=1.0
        )

    def test_p2p_latency_stretches_pipeline(self):
        s = build_schedule("dapple", 4, 1)
        base = simulate(s, self._cost(0.0))
        lat = simulate(s, self._cost(0.5))
        # 3 forward hops + 3 backward hops, 0.5 each.
        assert lat.compute_makespan == pytest.approx(base.compute_makespan + 3.0)

    def test_p2p_can_hide_in_bubbles(self):
        """With enough slack, p2p latency does not translate 1:1 into
        iteration time for schedules with interior bubbles."""
        s = build_schedule("chimera", 4, 4)
        base = simulate(s, self._cost(0.0))
        lat = simulate(s, self._cost(0.25))
        stretch = lat.compute_makespan - base.compute_makespan
        serial = 0.25 * 6 * 2  # every hop fully serialized
        assert stretch < serial


class TestSync:
    def _cost(self, **kw):
        topo = FlatTopology(LinkSpec(alpha=0.0, beta=1e-3))
        return CostModel(
            forward_time=1.0,
            topology=topo,
            stage_grad_bytes=100.0,
            data_parallel_width=2,
            **kw,
        )

    def test_nonblocking_sync_extends_iteration_not_compute(self):
        s = build_schedule("chimera", 4, 4, sync_mode="lazy")
        r = simulate(s, self._cost())
        assert r.iteration_time > r.compute_makespan
        assert r.sync_tail() > 0

    def test_blocking_sync_slower_or_equal(self):
        s = build_schedule("chimera", 4, 4, sync_mode="lazy")
        nb = simulate(s, self._cost())
        bl = simulate(s, self._cost(), blocking_sync=True)
        assert bl.iteration_time >= nb.iteration_time - 1e-12

    def test_launch_overhead_charged_to_worker(self):
        s = build_schedule("chimera", 4, 4, sync_mode="eager")
        base = simulate(s, self._cost())
        heavy = simulate(s, self._cost(sync_launch_overhead=0.5))
        assert heavy.iteration_time > base.iteration_time

    def test_eager_sync_starts_collectives_earlier(self):
        eager = simulate(build_schedule("chimera", 4, 4, sync_mode="eager"), self._cost())
        lazy = simulate(build_schedule("chimera", 4, 4, sync_mode="lazy"), self._cost())
        eager_first = min(c.start for c in eager.collectives)
        lazy_first = min(c.start for c in lazy.collectives)
        assert eager_first < lazy_first

    def test_collective_records_have_full_groups(self):
        s = build_schedule("chimera", 4, 4)
        r = simulate(s, self._cost())
        for c in r.collectives:
            assert len(c.workers) == 2  # two stage replicas per stage (f=1)

    def test_overlap_slowdown_penalizes_overlapped_collectives(self):
        s = build_schedule("chimera", 4, 4, sync_mode="eager")
        base = simulate(s, self._cost())
        slowed = simulate(s, self._cost(sync_overlap_slowdown=0.5))
        assert slowed.iteration_time >= base.iteration_time


class TestEventQueueMatchesPolling:
    """Differential: the event-queue engine must reproduce the seed's
    polling loop exactly for every implicit-communication schedule."""

    def _cost_models(self):
        topo = FlatTopology(LinkSpec(alpha=0.1, beta=1e-3))
        return [
            CostModel.practical(),
            CostModel(
                forward_time=1.0,
                topology=topo,
                activation_message_bytes=10.0,
                stage_grad_bytes=100.0,
                data_parallel_width=2,
                sync_launch_overhead=0.05,
            ),
        ]

    @pytest.mark.parametrize("scheme", available_schemes())
    def test_identical_timings(self, scheme):
        s = build_schedule(scheme, 4, 8)
        for cm in self._cost_models():
            a = simulate(s, cm)
            b = simulate_polling(s, cm)
            assert a.iteration_time == pytest.approx(b.iteration_time, abs=1e-12)
            assert a.compute_makespan == pytest.approx(
                b.compute_makespan, abs=1e-12
            )
            for key, timed in a.timed.items():
                assert timed.start == pytest.approx(b.timed[key].start, abs=1e-12)
                assert timed.end == pytest.approx(b.timed[key].end, abs=1e-12)

    @pytest.mark.parametrize("scheme", ["chimera", "pipedream", "zb_v"])
    def test_identical_under_blocking_sync(self, scheme):
        s = build_schedule(scheme, 4, 8)
        for cm in self._cost_models():
            a = simulate(s, cm, blocking_sync=True)
            b = simulate_polling(s, cm, blocking_sync=True)
            assert a.iteration_time == pytest.approx(b.iteration_time, abs=1e-12)
            for key, timed in a.timed.items():
                assert timed.start == pytest.approx(b.timed[key].start, abs=1e-12)

    def test_polling_rejects_lowered_schedules(self):
        low = lower_schedule(build_schedule("dapple", 2, 2))
        with pytest.raises(ScheduleError):
            simulate_polling(low, CostModel.practical())

    def test_dense_cache_reused_across_cost_models(self):
        from repro.schedules.dependencies import build_dependency_graph

        s = build_schedule("chimera", 4, 4)
        g = build_dependency_graph(s)
        r1 = simulate(s, CostModel.practical(), graph=g)
        dense = getattr(g, "_dense")
        r2 = simulate(s, CostModel.unit(), graph=g)
        assert getattr(g, "_dense") is dense
        assert r2.compute_makespan != r1.compute_makespan


class TestHierarchicalSimulation:
    """HierarchicalTopology end to end: intra/inter hops and collectives."""

    def _cost(self, gpus_per_node, **kw):
        topo = HierarchicalTopology(
            intra=LinkSpec(alpha=0.01, beta=0.0),
            inter=LinkSpec(alpha=1.0, beta=0.0),
            gpus_per_node=gpus_per_node,
            **kw,
        )
        return CostModel(
            forward_time=1.0, topology=topo, activation_message_bytes=1.0
        )

    def test_node_boundary_hop_dominates(self):
        s = build_schedule("dapple", 4, 1)
        inside = simulate(s, self._cost(4))
        split = simulate(s, self._cost(2))
        # One forward + one backward hop cross the node boundary.
        assert split.compute_makespan == pytest.approx(
            inside.compute_makespan + 2 * (1.0 - 0.01)
        )

    def test_collective_spanning_nodes_pays_inter_link(self):
        topo_narrow = HierarchicalTopology(
            intra=LinkSpec(0.0, 1e-4), inter=LinkSpec(0.0, 1e-1), gpus_per_node=4
        )
        topo_wide = HierarchicalTopology(
            intra=LinkSpec(0.0, 1e-4), inter=LinkSpec(0.0, 1e-1), gpus_per_node=2
        )
        s = build_schedule("chimera", 4, 4)
        base = dict(
            forward_time=1.0, stage_grad_bytes=100.0, data_parallel_width=2
        )
        within = simulate(s, CostModel(topology=topo_narrow, **base))
        spanning = simulate(s, CostModel(topology=topo_wide, **base))
        # Chimera's stage-replica pairs {0,3} and {1,2} span nodes when
        # only two workers share one.
        assert max(c.cost for c in spanning.collectives) > max(
            c.cost for c in within.collectives
        )


class TestBlockingSyncAblation:
    """blocking_sync=True semantics (the §3.2 ablation)."""

    def _cost(self):
        topo = FlatTopology(LinkSpec(alpha=0.0, beta=1e-2))
        return CostModel(
            forward_time=1.0,
            topology=topo,
            stage_grad_bytes=100.0,
            data_parallel_width=2,
        )

    def test_worker_blocks_until_collective_done(self):
        s = build_schedule("chimera", 4, 4, sync_mode="eager")
        r = simulate(s, self._cost(), blocking_sync=True)
        for record in r.collectives:
            for worker in record.workers:
                after = [
                    t
                    for t in r.timed_ops_on(worker)
                    if t.start > max(record.launch_times) - 1e-12
                ]
                for t in after:
                    assert t.start >= record.end - 1e-9

    def test_blocking_extends_compute_makespan(self):
        s = build_schedule("chimera", 4, 4, sync_mode="eager")
        nb = simulate(s, self._cost())
        bl = simulate(s, self._cost(), blocking_sync=True)
        assert bl.compute_makespan > nb.compute_makespan

    def test_blocking_equals_nonblocking_without_collective_cost(self):
        s = build_schedule("chimera", 4, 4)
        cm = CostModel.practical()  # no topology: collectives are free
        assert simulate(s, cm, blocking_sync=True).iteration_time == (
            pytest.approx(simulate(s, cm).iteration_time)
        )

    def test_blocking_sync_tail_is_zero(self):
        """A blocking iteration ends with its last compute op — the
        collectives were folded into the workers' timelines."""
        s = build_schedule("chimera", 4, 4, sync_mode="lazy")
        r = simulate(s, self._cost(), blocking_sync=True)
        last_launch = max(c.launch_times[-1] for c in r.collectives)
        assert r.iteration_time == pytest.approx(
            max(r.compute_makespan, max(c.end for c in r.collectives))
        )
        assert last_launch <= r.iteration_time
