"""Cost models, network topologies, and collective cost formulas."""


import pytest

from repro.common.errors import ConfigurationError
from repro.schedules.ir import Operation, OpKind
from repro.sim.collectives import (
    allreduce_cost,
    rabenseifner_cost,
    recursive_doubling_cost,
    ring_cost,
)
from repro.sim.cost import CostModel
from repro.sim.network import FlatTopology, HierarchicalTopology, LinkSpec


def F(mb=0, stage=0, **kw):
    return Operation(OpKind.FORWARD, 0, stage, micro_batches=(mb,), **kw)


def B(mb=0, stage=0, **kw):
    return Operation(OpKind.BACKWARD, 0, stage, micro_batches=(mb,), **kw)


class TestLinkSpec:
    def test_time_is_alpha_plus_beta_l(self):
        link = LinkSpec(alpha=1.0, beta=0.5)
        assert link.time(10) == pytest.approx(6.0)

    def test_from_bandwidth(self):
        link = LinkSpec.from_bandwidth(alpha=0.0, bandwidth_bytes_per_sec=2e9)
        assert link.time(2e9) == pytest.approx(1.0)

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(alpha=-1.0, beta=0.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            LinkSpec.from_bandwidth(alpha=0.0, bandwidth_bytes_per_sec=0.0)


class TestTopologies:
    def test_flat_self_message_free(self):
        topo = FlatTopology(LinkSpec(1.0, 1.0))
        assert topo.p2p_time(2, 2, 100) == 0.0

    def test_hierarchical_intra_vs_inter(self):
        topo = HierarchicalTopology(
            intra=LinkSpec(0.0, 1e-12), inter=LinkSpec(0.0, 1e-9), gpus_per_node=4
        )
        assert topo.p2p_time(0, 3, 1e9) < topo.p2p_time(3, 4, 1e9)

    def test_group_link_escalates_to_inter(self):
        topo = HierarchicalTopology(
            intra=LinkSpec(0.0, 1.0), inter=LinkSpec(0.0, 2.0), gpus_per_node=4
        )
        assert topo.group_link((0, 1, 2)) is topo.intra
        assert topo.group_link((0, 4)) is topo.inter


class TestHierarchicalTopology:
    def _topo(self, **kw):
        return HierarchicalTopology(
            intra=LinkSpec(alpha=1e-6, beta=1e-11),
            inter=LinkSpec(alpha=1e-5, beta=1e-9),
            gpus_per_node=8,
            **kw,
        )

    def test_node_of(self):
        topo = self._topo()
        assert topo.node_of(0) == 0
        assert topo.node_of(7) == 0
        assert topo.node_of(8) == 1

    def test_intra_node_uses_fast_link(self):
        topo = self._topo()
        assert topo.p2p_time(0, 7, 1e6) == pytest.approx(
            topo.intra.time(1e6)
        )

    def test_inter_node_uses_slow_link(self):
        topo = self._topo()
        assert topo.p2p_time(7, 8, 1e6) == pytest.approx(
            topo.inter.time(1e6)
        )

    def test_link_of_matches_p2p_time(self):
        topo = self._topo()
        for src, dst in ((0, 1), (0, 8), (15, 16), (8, 15)):
            assert topo.link_of(src, dst).time(123.0) == pytest.approx(
                topo.p2p_time(src, dst, 123.0)
            )

    def test_group_link_bounded_by_any_spanning_member(self):
        topo = self._topo()
        assert topo.group_link((0, 1, 2, 3)) is topo.intra
        assert topo.group_link((0, 1, 2, 9)) is topo.inter
        assert topo.group_link((8, 9)) is topo.intra

    def test_invalid_gpus_per_node_rejected(self):
        with pytest.raises(ConfigurationError):
            HierarchicalTopology(
                intra=LinkSpec(0.0, 0.0), inter=LinkSpec(0.0, 0.0), gpus_per_node=0
            )


class TestChannels:
    def test_full_duplex_directions_independent(self):
        topo = FlatTopology(LinkSpec(0.0, 1.0), duplex="full")
        assert topo.channel(0, 1) != topo.channel(1, 0)

    def test_half_duplex_directions_shared(self):
        topo = FlatTopology(LinkSpec(0.0, 1.0), duplex="half")
        assert topo.channel(0, 1) == topo.channel(1, 0)

    def test_hierarchical_duplex_modes(self):
        kw = dict(
            intra=LinkSpec(0.0, 1.0), inter=LinkSpec(0.0, 2.0), gpus_per_node=2
        )
        assert HierarchicalTopology(**kw).channel(0, 3) != (
            HierarchicalTopology(**kw).channel(3, 0)
        )
        half = HierarchicalTopology(duplex="half", **kw)
        assert half.channel(0, 3) == half.channel(3, 0)

    def test_invalid_duplex_rejected(self):
        with pytest.raises(ConfigurationError):
            FlatTopology(LinkSpec(0.0, 1.0), duplex="simplex")

    def test_occupancy_is_bandwidth_term_only(self):
        link = LinkSpec(alpha=5.0, beta=0.5)
        assert link.occupancy(10.0) == pytest.approx(5.0)
        assert link.time(10.0) == pytest.approx(10.0)

    def test_cost_model_occupancy_and_channel(self):
        topo = FlatTopology(LinkSpec(alpha=1.0, beta=2.0))
        cm = CostModel(
            forward_time=1.0, topology=topo, activation_message_bytes=3.0
        )
        assert cm.p2p_occupancy(0, 1, 1.0) == pytest.approx(6.0)
        assert cm.p2p_occupancy(1, 1, 1.0) == 0.0
        assert cm.p2p_channel(0, 1) == (0, 1)
        assert cm.p2p_channel(2, 2) is None
        assert CostModel(forward_time=1.0).p2p_channel(0, 1) is None


class TestCollectiveCosts:
    def test_rabenseifner_formula(self):
        # 2 log2(r) alpha + 2 (r-1)/r beta L
        got = rabenseifner_cost(alpha=2.0, beta=0.5, num_bytes=80, group_size=8)
        assert got == pytest.approx(2 * 3 * 2.0 + 2 * (7 / 8) * 0.5 * 80)

    def test_ring_formula(self):
        got = ring_cost(alpha=1.0, beta=0.25, num_bytes=100, group_size=4)
        assert got == pytest.approx(2 * 3 * 1.0 + 2 * (3 / 4) * 0.25 * 100)

    def test_recursive_doubling_formula(self):
        got = recursive_doubling_cost(alpha=1.0, beta=0.1, num_bytes=10, group_size=8)
        assert got == pytest.approx(3 * (1.0 + 1.0))

    def test_group_of_one_free(self):
        for algo in ("rabenseifner", "ring", "recursive_doubling"):
            assert allreduce_cost(algo, 1.0, 1.0, 100.0, 1) == 0.0

    def test_rabenseifner_bandwidth_optimal_for_large_messages(self):
        big = 1e9
        rab = rabenseifner_cost(1e-6, 1e-10, big, 64)
        rd = recursive_doubling_cost(1e-6, 1e-10, big, 64)
        assert rab < rd

    def test_ring_latency_heavy_for_large_groups(self):
        rab = rabenseifner_cost(1e-3, 0.0, 1.0, 1024)
        ring = ring_cost(1e-3, 0.0, 1.0, 1024)
        assert ring > rab

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            allreduce_cost("gossip", 1.0, 1.0, 1.0, 4)

    def test_invalid_group_rejected(self):
        with pytest.raises(ConfigurationError):
            ring_cost(1.0, 1.0, 1.0, 0)


class TestCostModel:
    def test_forward_backward_ratio(self):
        cm = CostModel(forward_time=2.0)
        assert cm.compute_time(F()) == pytest.approx(2.0)
        assert cm.compute_time(B()) == pytest.approx(4.0)

    def test_recompute_ratio(self):
        cm = CostModel(forward_time=1.0)
        assert cm.compute_time(B(recompute=True)) == pytest.approx(3.0)

    def test_chunk_scales_duration(self):
        cm = CostModel(forward_time=1.0)
        chunk = Operation(OpKind.FORWARD, 0, 0, micro_batches=(0, 1))
        assert cm.compute_time(chunk) == pytest.approx(2.0)

    def test_half_backward_scales_duration(self):
        cm = CostModel(forward_time=1.0)
        half = Operation(OpKind.BACKWARD, 0, 0, micro_batches=(0,), part=(0, 2))
        assert cm.compute_time(half) == pytest.approx(1.0)

    def test_allreduce_op_has_no_compute_time(self):
        cm = CostModel(forward_time=1.0)
        assert cm.compute_time(Operation(OpKind.ALLREDUCE, 0, 0)) == 0.0

    def test_stage_scale_applied(self):
        cm = CostModel(forward_time=1.0, stage_scale=(1.0, 2.5))
        assert cm.compute_time(F(stage=1)) == pytest.approx(2.5)

    def test_stage_scale_out_of_range(self):
        cm = CostModel(forward_time=1.0, stage_scale=(1.0,))
        with pytest.raises(ConfigurationError):
            cm.compute_time(F(stage=3))

    def test_allreduce_group_width_multiplier(self):
        topo = FlatTopology(LinkSpec(0.0, 1.0))
        narrow = CostModel(
            forward_time=1.0, topology=topo, stage_grad_bytes=8.0,
            data_parallel_width=1,
        )
        wide = narrow.with_(data_parallel_width=8)
        assert wide.allreduce_time(0, (0, 1)) > narrow.allreduce_time(0, (0, 1))

    def test_allreduce_trivial_group_free(self):
        cm = CostModel(forward_time=1.0, stage_grad_bytes=8.0)
        assert cm.allreduce_time(0, (3,)) == 0.0

    def test_p2p_needs_topology(self):
        cm = CostModel(forward_time=1.0, activation_message_bytes=100.0)
        assert cm.p2p_time(0, 1, 1.0) == 0.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(forward_time=0.0)
        with pytest.raises(ConfigurationError):
            CostModel(forward_time=1.0, backward_ratio=-1.0)
        with pytest.raises(ConfigurationError):
            CostModel(forward_time=1.0, data_parallel_width=0)
