"""Performance model (Equation 1) and configuration selection (§3.4)."""

import pytest

from repro.bench.machines import PIZ_DAINT, V100_CLUSTER
from repro.bench.workloads import BERT48, GPT2_64
from repro.common.errors import ConfigurationError
from repro.perf.calibration import calibrate_cost_model, calibrate_memory_model
from repro.perf.model import (
    chimera_critical_path,
    predict_closed_form,
    predict_iteration_time,
)
from repro.perf.planner import greedy_micro_batch, select_configuration
from repro.schedules.chimera import build_chimera_schedule
from repro.schedules.registry import build_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate


class TestCriticalPath:
    def test_figure6_example(self):
        """D = 6, N = 6 gives C_f = 6, C_b = 10 (paper Figure 6)."""
        assert chimera_critical_path(6, 6) == (6, 10)

    def test_full_pipeline_counts(self):
        assert chimera_critical_path(4, 8) == (8, 10)

    def test_underfilled_pipeline_floors_at_depth(self):
        assert chimera_critical_path(8, 1) == (8, 8)

    def test_odd_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            chimera_critical_path(5, 5)


class TestClosedForm:
    def test_matches_simulated_makespan_balanced(self):
        """For balanced stages and no comms, Eq. (1) compute term equals
        the engine's makespan exactly (N = D)."""
        for depth in (4, 8, 16):
            pred = predict_closed_form(depth, depth, forward_time=1.0)
            sched = build_chimera_schedule(depth, depth)
            sim = simulate(sched, CostModel.practical())
            assert pred.compute_time == pytest.approx(sim.compute_makespan)

    def test_recompute_ratio_used(self):
        plain = predict_closed_form(4, 4, forward_time=1.0)
        recomp = predict_closed_form(4, 4, forward_time=1.0, recompute=True)
        assert recomp.compute_time > plain.compute_time

    def test_p2p_term_linear(self):
        base = predict_closed_form(4, 4, forward_time=1.0)
        comm = predict_closed_form(4, 4, forward_time=1.0, comm_p2p=0.5)
        c_f, c_b = chimera_critical_path(4, 4)
        assert comm.compute_time - base.compute_time == pytest.approx(
            0.5 * (c_f + c_b)
        )


class TestFullModel:
    @pytest.mark.parametrize(
        "depth,width,b", [(4, 8, 8), (8, 4, 4), (16, 2, 2)]
    )
    def test_error_under_10_percent(self, depth, width, b):
        """The paper reports <10% model error (§4.2.2)."""
        n = max(depth, 256 // (width * b))
        cost = calibrate_cost_model(
            PIZ_DAINT, BERT48, depth=depth, micro_batch=b, data_parallel_width=width
        )
        pred = predict_iteration_time(depth, n, cost)
        sim = simulate(build_chimera_schedule(depth, n), cost)
        err = abs(pred.iteration_time - sim.iteration_time) / sim.iteration_time
        assert err < 0.10

    def test_ranking_matches_practice_bert48(self):
        """The model must pick the same best (W, D) as the simulation
        (Figure 13, Bert-48 panel)."""
        mini_batch = 256
        ranked_model, ranked_sim = [], []
        for depth in (2, 4, 8, 16):
            width = 32 // depth
            picked = greedy_micro_batch(
                PIZ_DAINT, BERT48, width=width, depth=depth, mini_batch=mini_batch
            )
            assert picked is not None
            b, recompute = picked
            n = mini_batch // (width * b)
            cost = calibrate_cost_model(
                PIZ_DAINT, BERT48, depth=depth, micro_batch=b,
                data_parallel_width=width,
            )
            pred = predict_iteration_time(depth, n, cost, recompute=recompute)
            sim = simulate(
                build_schedule("chimera", depth, n, recompute=recompute), cost
            )
            ranked_model.append((pred.iteration_time, depth))
            ranked_sim.append((sim.iteration_time, depth))
        assert min(ranked_model)[1] == min(ranked_sim)[1]


class TestSelector:
    def test_returns_sorted_candidates(self):
        ranked = select_configuration(
            PIZ_DAINT, BERT48, num_workers=32, mini_batch=512
        )
        times = [c.predicted_time for c in ranked]
        assert times == sorted(times)

    def test_depths_divide_workers_and_layers(self):
        ranked = select_configuration(
            PIZ_DAINT, BERT48, num_workers=32, mini_batch=512
        )
        for c in ranked:
            assert 32 % c.depth == 0
            assert BERT48.num_layers % c.depth == 0
            assert c.width * c.depth == 32

    def test_greedy_prefers_largest_fitting_b(self):
        picked = greedy_micro_batch(
            PIZ_DAINT, BERT48, width=8, depth=4, mini_batch=512
        )
        assert picked is not None
        b, _ = picked
        assert b >= 8  # Chimera runs B=8 here in the paper

    def test_too_few_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            select_configuration(PIZ_DAINT, BERT48, num_workers=1, mini_batch=64)

    def test_v100_cluster_also_selects(self):
        ranked = select_configuration(
            V100_CLUSTER, BERT48, num_workers=16, mini_batch=128
        )
        assert ranked


class TestCalibration:
    def test_stage_scales_reflect_head_weight(self):
        cost = calibrate_cost_model(PIZ_DAINT, GPT2_64, depth=8, micro_batch=1)
        assert cost.stage_scale is not None
        assert max(cost.stage_scale) == cost.stage_scale[-1]  # LM head stage

    def test_small_micro_batch_less_efficient(self):
        small = calibrate_cost_model(PIZ_DAINT, BERT48, depth=4, micro_batch=1)
        large = calibrate_cost_model(PIZ_DAINT, BERT48, depth=4, micro_batch=8)
        # Per-sample time = F_t / B must shrink with B.
        assert large.forward_time / 8 < small.forward_time

    def test_memory_model_embedding_on_first_stage(self):
        mm = calibrate_memory_model(PIZ_DAINT, BERT48, depth=4, micro_batch=4)
        assert mm.weights(0) > mm.weights(1)

    def test_grad_bytes_track_params(self):
        cost = calibrate_cost_model(PIZ_DAINT, BERT48, depth=4, micro_batch=4)
        profiles = BERT48.stage_profiles(4, 4)
        for stage, p in enumerate(profiles):
            assert cost.grad_bytes(stage) == pytest.approx(4.0 * p.params)


class TestSelectorRemoval:
    def test_deprecated_shim_is_gone(self):
        """The repro.perf.selector deprecation shim was retired; the §3.4
        objects live in (and only in) repro.perf.planner."""
        import importlib
        import sys

        sys.modules.pop("repro.perf.selector", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.perf.selector")
        from repro.perf import planner

        assert callable(planner.select_configuration)
        assert callable(planner.greedy_micro_batch)
        assert planner.ConfigCandidate is not None
