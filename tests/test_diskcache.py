"""The persistent disk tier of the schedule-artifact cache.

Covers the serialization round-trip (including attached kernels and
frozen metadata), corruption tolerance (bad entries are evicted, never
raised), the concurrent hammer the ISSUE demands (threads × mixed
hits/misses/LRU evictions over a shared disk tier), a multi-*process*
hammer (N processes store/load/vandalize one cache directory — the tier
multiprocess planner workers share), eviction accounting under racing
removals, and the cold-start acceptance: a fresh process with a warm
disk cache plans without a single ``build_schedule`` call and at least
2x faster end to end.
"""

from __future__ import annotations

import io
import json
import os
import pathlib
import pickle
import subprocess
import sys
import threading

import pytest

from repro.schedules.cache import ScheduleArtifacts, ScheduleCache
from repro.schedules.diskcache import (
    ENV_DIR,
    ENV_DISABLE,
    MAGIC,
    DiskScheduleCache,
    _ArtifactPickler,
    default_cache_dir,
)
from repro.schedules.registry import build_schedule
from repro.sim.cost import CostModel
from repro.sim.kernel import simulate_fast

REPO = pathlib.Path(__file__).resolve().parent.parent


def fresh_cache(tmp_path, max_entries: int = 128) -> ScheduleCache:
    return ScheduleCache(max_entries, disk=DiskScheduleCache(tmp_path / "disk"))


class TestDiskRoundTrip:
    def test_snapshot_restores_all_forms_and_kernel(self, tmp_path):
        disk = DiskScheduleCache(tmp_path)
        arts = ScheduleArtifacts(build_schedule("chimera", 4, 8))
        # Materialize everything, including the attached array kernel.
        kernel = arts.kernel_for(True, True)
        key = ScheduleCache.key("chimera", 4, 8, {})
        assert disk.store(key, arts.snapshot())

        restored = ScheduleArtifacts.from_snapshot(disk.load(key))
        assert restored.schedule.worker_ops == arts.schedule.worker_ops
        # Frozen metadata survives the custom pickling.
        assert dict(restored.schedule.metadata) == dict(arts.schedule.metadata)
        with pytest.raises(TypeError):
            restored.schedule.metadata["x"] = 1
        # The kernel came back attached: identical simulation, no rebuild.
        rk = restored.kernel_for(True, True)
        assert rk.total == kernel.total
        cost = CostModel.practical()
        a = simulate_fast(arts.schedule_for(True, True), cost,
                          graph=arts.graph_for(True, True))
        b = simulate_fast(restored.schedule_for(True, True), cost,
                          graph=restored.graph_for(True, True))
        assert a.compute_makespan == b.compute_makespan
        assert a.iteration_time == b.iteration_time

    def test_second_cache_instance_hits_same_entry(self, tmp_path):
        first = fresh_cache(tmp_path)
        first.artifacts("dapple", 4, 8)
        second = fresh_cache(tmp_path)
        second.artifacts("dapple", 4, 8)
        stats = second.disk.stats()
        assert stats.hits == 1 and stats.misses == 0

    def test_disable_env_turns_tier_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "1")
        disk = DiskScheduleCache(tmp_path)
        key = ScheduleCache.key("gpipe", 2, 4, {})
        assert not disk.store(key, {"schedule": build_schedule("gpipe", 2, 4)})
        assert disk.load(key) is None
        assert disk.stats().entries == 0

    def test_default_dir_resolves_env_lazily(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "a"))
        assert default_cache_dir() == tmp_path / "a"
        monkeypatch.setenv(ENV_DIR, str(tmp_path / "b"))
        assert DiskScheduleCache().root == tmp_path / "b"


class TestCorruptionTolerance:
    """A bad disk entry may cost a rebuild, never a crash or a wrong plan."""

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda blob: b"not even close",
            lambda blob: blob[: len(blob) // 2],  # truncated
            lambda blob: MAGIC + b"\x80\x04garbage.",
            lambda blob: blob[:-7] + bytes(7),  # bit rot in the tail
        ],
        ids=["foreign", "truncated", "bad-pickle", "tail-rot"],
    )
    def test_corrupt_entry_evicted_and_rebuilt(self, tmp_path, mangle):
        cache = fresh_cache(tmp_path)
        arts = cache.artifacts("chimera", 4, 8)
        path = cache.disk.entry_path(ScheduleCache.key("chimera", 4, 8, {}))
        path.write_bytes(mangle(path.read_bytes()))

        rebuilt = fresh_cache(tmp_path)
        again = rebuilt.artifacts("chimera", 4, 8)
        assert again.schedule.worker_ops == arts.schedule.worker_ops
        stats = rebuilt.disk.stats()
        assert stats.evictions == 1 and stats.hits == 0
        # The rebuild wrote a good entry back over the evicted one.
        assert rebuilt.disk.load(ScheduleCache.key("chimera", 4, 8, {}))

    def test_key_collision_is_rejected(self, tmp_path):
        """An entry whose embedded key disagrees (hash collision, copied
        file) is evicted instead of served."""
        disk = DiskScheduleCache(tmp_path)
        key_a = ScheduleCache.key("chimera", 4, 8, {})
        key_b = ScheduleCache.key("dapple", 4, 8, {})
        arts = ScheduleArtifacts(build_schedule("chimera", 4, 8))
        disk.store(key_a, arts.snapshot())
        disk.entry_path(key_b).parent.mkdir(parents=True, exist_ok=True)
        disk.entry_path(key_b).write_bytes(
            disk.entry_path(key_a).read_bytes()
        )
        assert disk.load(key_b) is None
        assert disk.stats().evictions == 1

    def test_stale_format_version_misses(self, tmp_path, monkeypatch):
        disk = DiskScheduleCache(tmp_path)
        key = ScheduleCache.key("gpipe", 2, 4, {})
        disk.store(key, ScheduleArtifacts(build_schedule("gpipe", 2, 4)).snapshot())
        blob = disk.entry_path(key).read_bytes()
        wrapper = pickle.loads(blob[len(MAGIC):])
        wrapper["format"] += 1
        buf = io.BytesIO()
        buf.write(MAGIC)
        _ArtifactPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(wrapper)
        disk.entry_path(key).write_bytes(buf.getvalue())
        assert disk.load(key) is None


class TestConcurrentHammer:
    def test_threads_mixed_hits_misses_evictions_and_corruption(self, tmp_path):
        """Many threads over a tiny LRU + shared disk tier: every lookup
        must return a structurally correct schedule while entries bounce
        between memory, disk, and a concurrent corrupter."""
        cache = fresh_cache(tmp_path, max_entries=4)  # forces LRU churn
        cells = [
            ("chimera", 4, 8),
            ("chimera", 2, 4),
            ("dapple", 4, 8),
            ("gpipe", 4, 8),
            ("zb_h1", 4, 8),
            ("dapple", 2, 8),
        ]
        errors: list[BaseException] = []
        stop = threading.Event()

        def worker(seed: int) -> None:
            try:
                for i in range(40):
                    scheme, depth, n = cells[(seed + i) % len(cells)]
                    arts = cache.artifacts(scheme, depth, n)
                    assert arts.schedule.num_stages == depth
                    assert arts.schedule.num_micro_batches == n
                    # Touch a derived form so persist callbacks fire
                    # concurrently with loads.
                    arts.graph()
            except BaseException as err:  # noqa: BLE001 - collected for the assert
                errors.append(err)

        def corrupter() -> None:
            try:
                while not stop.is_set():
                    for path in list(tmp_path.rglob("*.pkl"))[:2]:
                        try:
                            path.write_bytes(b"garbage")
                        except OSError:
                            pass
            except BaseException as err:  # noqa: BLE001
                errors.append(err)

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(8)]
        vandal = threading.Thread(target=corrupter)
        vandal.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        vandal.join()
        assert errors == []
        stats = cache.stats()
        assert stats.lookups == 8 * 40
        # The tiny LRU guarantees both outcomes actually occurred.
        assert stats.hits > 0 and stats.misses > 0
        disk = cache.disk.stats()
        assert disk.stores > 0

    def test_concurrent_same_key_retains_one_entry(self, tmp_path):
        """Racing threads on one cold key all get equivalent artifacts and
        the cache retains exactly one entry (first insert wins)."""
        cache = fresh_cache(tmp_path)
        results: list[ScheduleArtifacts] = []
        lock = threading.Lock()

        def worker() -> None:
            arts = cache.artifacts("chimera", 4, 8)
            with lock:
                results.append(arts)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.stats().entries == 1
        retained = cache.artifacts("chimera", 4, 8)
        assert retained in results
        for arts in results:
            assert arts.schedule.worker_ops == retained.schedule.worker_ops


class TestEvictionAccounting:
    def test_racing_evictions_count_once(self, tmp_path):
        """Two cache instances (stand-ins for two processes sharing one
        cache dir) race to evict the same corrupt entry: only the unlink
        that actually removed the file may count. The old missing_ok
        unlink credited every racer with the single removal."""
        disk = DiskScheduleCache(tmp_path)
        other = DiskScheduleCache(tmp_path)
        key = ScheduleCache.key("gpipe", 2, 4, {})
        disk.store(key, ScheduleArtifacts(build_schedule("gpipe", 2, 4)).snapshot())
        path = disk.entry_path(key)
        path.write_bytes(b"garbage")

        # Both sides have read the corrupt blob and decided to evict;
        # the second unlink finds the file already gone.
        disk._evict(path)
        other._evict(path)
        assert disk.stats().evictions == 1
        assert other.stats().evictions == 0


MP_HAMMER_SCRIPT = """
import json, pathlib, random, sys
from repro.schedules.cache import ScheduleArtifacts, ScheduleCache
from repro.schedules.diskcache import DiskScheduleCache
from repro.schedules.registry import build_schedule

seed = int(sys.argv[1])
rng = random.Random(seed)
disk = DiskScheduleCache(pathlib.Path(sys.argv[2]))
cells = [("gpipe", 2, 4), ("dapple", 2, 4), ("chimera", 2, 4), ("gpipe", 2, 8)]
snapshots = {c: ScheduleArtifacts(build_schedule(*c)).snapshot() for c in cells}
loaded = 0
for i in range(60):
    cell = cells[(seed + i) % len(cells)]
    key = ScheduleCache.key(cell[0], cell[1], cell[2], {})
    roll = rng.random()
    if roll < 0.4:
        disk.store(key, snapshots[cell])
    elif roll < 0.8:
        payload = disk.load(key)
        if payload is not None:
            assert "schedule" in payload, "structurally wrong payload served"
            loaded += 1
    else:
        try:
            disk.entry_path(key).write_bytes(b"garbage")
        except OSError:
            pass
s = disk.stats()
print(json.dumps({
    "hits": s.hits, "misses": s.misses, "stores": s.stores,
    "evictions": s.evictions, "loaded": loaded,
}))
"""


class TestMultiProcessHammer:
    def test_processes_store_load_evict_one_cache_dir(self, tmp_path):
        """N concurrent *processes* hammer one cache directory with mixed
        stores, loads, and vandalism: no crash, no wrong payload, and the
        directory still round-trips cleanly afterwards (the thread hammer
        above cannot see cross-process races in the atomic-rename store
        or the eviction path — this one does)."""
        shared = tmp_path / "shared"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env.pop(ENV_DISABLE, None)

        procs = [
            subprocess.Popen(
                [sys.executable, "-c", MP_HAMMER_SCRIPT, str(seed), str(shared)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=env,
                cwd=REPO,
            )
            for seed in range(4)
        ]
        stats = []
        for proc in procs:
            out, err = proc.communicate(timeout=600)
            assert proc.returncode == 0, err
            stats.append(json.loads(out.strip().splitlines()[-1]))

        assert sum(s["stores"] for s in stats) > 0
        assert sum(s["loaded"] for s in stats) > 0
        # Whatever the hammer left behind, the tier still works: every
        # cell stores and loads back structurally intact.
        disk = DiskScheduleCache(shared)
        for cell in [("gpipe", 2, 4), ("dapple", 2, 4), ("chimera", 2, 4)]:
            key = ScheduleCache.key(cell[0], cell[1], cell[2], {})
            arts = ScheduleArtifacts(build_schedule(*cell))
            assert disk.store(key, arts.snapshot())
            restored = ScheduleArtifacts.from_snapshot(disk.load(key))
            assert restored.schedule.worker_ops == arts.schedule.worker_ops


COLD_START_SCRIPT = """
import json, sys, time
import repro.schedules.registry as registry

calls = {"build": 0}
orig = registry.build_schedule

def counting(*args, **kwargs):
    calls["build"] += 1
    return orig(*args, **kwargs)

registry.build_schedule = counting
import repro.schedules.cache as cache_mod
cache_mod.build_schedule = counting

from repro.bench.machines import PIZ_DAINT
from repro.bench.workloads import BERT48
from repro.perf.planner import plan_configurations

t0 = time.perf_counter()
entries = plan_configurations(
    PIZ_DAINT, BERT48, num_workers=8, mini_batch=32,
    schemes=("chimera", "dapple"),
)
wall = time.perf_counter() - t0
print(json.dumps({
    "wall": wall,
    "builds": calls["build"],
    "top": entries[0].label(),
    "throughput": entries[0].throughput,
}))
"""


class TestColdStartAcceptance:
    def test_warm_disk_cache_skips_builds_and_halves_wall(self, tmp_path):
        """Acceptance: a fresh process with a warm disk cache ranks the
        planner_table workload with ZERO build_schedule calls and >= 2x
        faster end to end than the truly cold process."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO / "src")
        env[ENV_DIR] = str(tmp_path / "warmdir")

        def run() -> dict:
            out = subprocess.run(
                [sys.executable, "-c", COLD_START_SCRIPT],
                capture_output=True,
                text=True,
                env=env,
                timeout=600,
                cwd=REPO,
            )
            assert out.returncode == 0, out.stderr
            return json.loads(out.stdout.strip().splitlines()[-1])

        cold = run()
        warm = run()
        assert cold["builds"] > 0
        assert warm["builds"] == 0, (
            f"warm cold-start still built {warm['builds']} schedules"
        )
        # Identical plan either way.
        assert warm["top"] == cold["top"]
        assert warm["throughput"] == pytest.approx(cold["throughput"], abs=1e-9)
        speedup = cold["wall"] / warm["wall"]
        assert speedup >= 2.0, (
            f"warm disk cache only {speedup:.2f}x faster "
            f"(cold {cold['wall']:.2f}s, warm {warm['wall']:.2f}s)"
        )
