"""The ``repro bench`` suite, its JSON schema, and the CI regression gate.

The deterministic parts (schema, checksum, checker verdicts) are tested
exactly; the timing-dependent parts (speedups) are tested against wide
margins on reduced grids, plus the acceptance measurement — the batch
path at least 3x the event engine on the D=16, N=64 grid — on the full
scheme list.
"""

import copy
import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.bench import perfsuite
from repro.cli import main
from repro.schedules.registry import available_schemes, scheme_traits

#: The fixed-grid suite covers every scheme with a cost-independent
#: canonical build; cost-parameterized schemes (synthesize) get their own
#: non-gating block instead.
SUITE_SCHEMES = tuple(
    s for s in available_schemes() if not scheme_traits(s).cost_parameterized
)

#: Reduced grid shared by the deterministic tests: small, but still both
#: communication modes and a mix of fused/split-backward schemes.
SMALL = dict(fast=True, schemes=("gpipe", "chimera", "zb_h1"), repeats=1, batch_size=3)


@pytest.fixture(scope="module")
def small_payload():
    return perfsuite.run_suite(**SMALL)


def test_suite_grid_covers_every_scheme():
    cases = perfsuite.suite_cases()
    assert len(cases) == len(SUITE_SCHEMES) * 3 * 5
    ids = {c.case_id for c in cases}
    assert len(ids) == len(cases)
    for scheme in SUITE_SCHEMES:
        for depth in perfsuite.SUITE_DEPTHS:
            for mode in perfsuite.MODES:
                assert f"{scheme}/D{depth}/N64/{mode}" in ids
    assert perfsuite.MODES == (
        "implicit", "lowered", "fused", "contended", "contended_fused"
    )
    assert len(perfsuite.suite_cases(fast=True)) == len(SUITE_SCHEMES) * 5


def test_payload_schema(small_payload):
    payload = small_payload
    assert payload["schema_version"] == perfsuite.SCHEMA_VERSION
    assert payload["suite"] == "fast"
    assert payload["calibration_score"] > 0
    assert len(payload["cases"]) == len(SMALL["schemes"]) * 5
    assert "contended_batch_speedup_min" in payload["summary"]
    for case in payload["cases"]:
        assert case["ops"] > 0
        assert case["compute_makespan"] > 0
        assert case["iteration_time"] >= case["compute_makespan"]
        for engine in ("event", "fast", "batch"):
            assert case[engine]["ops_per_sec"] > 0
    summary = payload["summary"]
    assert summary["makespan_checksum"] == perfsuite.makespan_checksum(payload["cases"])
    offload = payload["offload"]
    assert summary["offload_fast_speedup_min"] == offload["fast_speedup_min"]
    assert len(offload["cases"]) == len(perfsuite.OFFLOAD_SCHEMES) * len(
        perfsuite.OFFLOAD_FAST_DEPTHS
    ) * len(perfsuite.OFFLOAD_MODES)
    for case in offload["cases"]:
        assert case["host_copies"] > 0  # the pass really offloaded stashes
        assert case["compute_makespan"] > 0
        for engine in ("event", "fast"):
            assert case[engine]["ops_per_sec"] > 0
    # JSON-serializable end to end.
    json.loads(json.dumps(payload))


def test_makespans_are_deterministic(small_payload):
    again = perfsuite.run_suite(**SMALL)
    assert (
        again["summary"]["makespan_checksum"]
        == small_payload["summary"]["makespan_checksum"]
    )


def test_self_check_passes(small_payload):
    assert perfsuite.check_against(small_payload, small_payload) == []


def test_injected_25pct_slowdown_fails_gate(small_payload):
    """The acceptance scenario: a synthetic 25% throughput drop is caught."""
    slowed = copy.deepcopy(small_payload)
    for case in slowed["cases"]:
        for engine in ("event", "fast", "batch"):
            case[engine]["ops_per_sec"] *= 0.75
    violations = perfsuite.check_against(slowed, small_payload)
    assert violations, "25% slowdown must trip the 20% gate"
    assert any("throughput regressed" in v for v in violations)
    # 25% is invisible at a 30% tolerance: the knob works both ways.
    assert perfsuite.check_against(slowed, small_payload, tolerance=0.30) == []


def test_injected_slowdown_in_offload_block_fails_gate(small_payload):
    """The gate covers the offload section too: a regression confined to
    the host-channel cases (engine cases untouched) still trips it."""
    slowed = copy.deepcopy(small_payload)
    for case in slowed["offload"]["cases"]:
        for engine in ("event", "fast"):
            case[engine]["ops_per_sec"] *= 0.75
    violations = perfsuite.check_against(slowed, small_payload)
    assert violations, "25% offload slowdown must trip the 20% gate"
    assert all(v.startswith("offload ") for v in violations)
    assert any("throughput regressed" in v for v in violations)

    dropped = copy.deepcopy(small_payload)
    gone = dropped["offload"]["cases"].pop(0)
    violations = perfsuite.check_against(dropped, small_payload)
    assert any(
        gone["id"] in v and "disappeared" in v for v in violations
    )


def test_makespan_mismatch_fails_gate(small_payload):
    wrong = copy.deepcopy(small_payload)
    wrong["cases"][0]["compute_makespan"] += 1e-6
    violations = perfsuite.check_against(wrong, small_payload)
    assert any("compute_makespan mismatch" in v for v in violations)


def test_case_set_and_schema_guards(small_payload):
    missing = copy.deepcopy(small_payload)
    dropped = missing["cases"].pop(0)
    violations = perfsuite.check_against(missing, small_payload)
    assert any(dropped["id"] in v and "disappeared" in v for v in violations)

    other_schema = copy.deepcopy(small_payload)
    other_schema["schema_version"] = perfsuite.SCHEMA_VERSION + 1
    assert any(
        "schema version mismatch" in v
        for v in perfsuite.check_against(other_schema, small_payload)
    )

    other_suite = copy.deepcopy(small_payload)
    other_suite["suite"] = "full"
    assert any(
        "suite mismatch" in v
        for v in perfsuite.check_against(other_suite, small_payload)
    )


def test_slowdown_injection_scales_measurements():
    base = perfsuite.run_suite(fast=True, schemes=("gpipe",), repeats=1, batch_size=2)
    slowed = perfsuite.run_suite(
        fast=True,
        schemes=("gpipe",),
        repeats=1,
        batch_size=2,
        inject_slowdown=4.0,
    )
    assert slowed["inject_slowdown"] == 4.0
    # Makespans are simulation outputs, not wall times: untouched.
    assert (
        slowed["summary"]["makespan_checksum"]
        == base["summary"]["makespan_checksum"]
    )
    for cur, ref in zip(slowed["cases"], base["cases"]):
        assert cur["event"]["wall_s"] > ref["event"]["wall_s"]


def test_cli_bench_writes_json_and_gates(tmp_path):
    out = tmp_path / "BENCH_test.json"
    baseline = tmp_path / "baseline.json"
    code = main(["bench", "--fast", "--repeats", "1", "-o", str(baseline)])
    assert code == 0
    payload = json.loads(baseline.read_text())
    assert payload["schema_version"] == perfsuite.SCHEMA_VERSION

    # Wide margins keep this a plumbing test, not a timing test (the
    # tight 20%-tolerance logic is covered deterministically above): a
    # clean re-run passes at 90% tolerance...
    code = main(
        [
            "bench", "--fast", "--repeats", "1",
            "-o", str(out), "--check-against", str(baseline),
            "--tolerance", "0.9",
        ]
    )
    assert code == 0
    # ...and a 100x synthetic slowdown fails even there.
    code = main(
        [
            "bench", "--fast", "--repeats", "1",
            "-o", str(out), "--check-against", str(baseline),
            "--tolerance", "0.9", "--inject-slowdown", "100.0",
        ]
    )
    assert code == 1


def test_acceptance_batch_speedup_at_d16():
    """Tentpole acceptance: batch path >= 3x the event engine at D=16, N=64
    for every registered scheme across all five modes — and >= 5x
    (:data:`perfsuite.CONTENDED_BATCH_SPEEDUP_FLOOR`) on the lowered
    *contended* cases, where the event engine pays per-event channel
    bookkeeping while the kernel's FIFO serialization stays in one
    vectorized sweep. Makespan parity is enforced inside ``run_case``
    (it raises beyond 1e-9), fused-vs-lowered parity in ``run_suite``.
    The planner load harness has its own acceptance test below."""
    payload = perfsuite.run_suite(depths=(16,), repeats=2, planner=False)
    assert len(payload["cases"]) == len(SUITE_SCHEMES) * 5
    worst = payload["summary"]["d16_batch_speedup_min"]
    assert worst >= 3.0, f"batch path only {worst:.1f}x the event engine"
    contended = payload["summary"]["d16_contended_batch_speedup_min"]
    assert contended >= perfsuite.CONTENDED_BATCH_SPEEDUP_FLOOR, (
        f"contended batch path only {contended:.1f}x the event engine"
    )
    assert perfsuite.check_against(payload, payload) == []


def test_contended_floor_trips_checker(small_payload):
    """A run whose D=16 contended speedup sinks below the absolute floor
    fails the gate even against an equally slow baseline."""
    slow = copy.deepcopy(small_payload)
    slow["summary"]["d16_contended_batch_speedup_min"] = 4.2
    violations = perfsuite.check_against(slow, slow)
    assert any("below" in v and "floor" in v for v in violations)


#: Schemes whose lowered form is dominated by SEND/RECV pairs (two of
#: every three ops), where batching must buy a comfortable margin.
#: PipeDream's per-micro-batch allreduces and the stable-pattern
#: V-schedules' denser compute dilute the comm fraction, so those three
#: get the softer all-scheme floor only.
COMM_HEAVY = ("gpipe", "dapple", "gems", "chimera", "pipedream_2bw", "zb_h1", "zb_v")


#: Fresh-process measurement of the lowered/fused event wall ratio.
#: The two variants are timed back-to-back per repetition (best-of-5)
#: so CPU frequency drift between schemes cannot bias the ratio, and the
#: whole measurement runs in its own interpreter: heap state left behind
#: by earlier in-process tests (suite caches, planner thread pools,
#: allocator fragmentation) demonstrably narrows the fused advantage
#: from ~1.25x to ~1.15x and flips the acceptance floor.
FUSED_RATIO_SCRIPT = """\
import gc
import json
import time

from repro.bench import perfsuite
from repro.schedules.cache import ScheduleArtifacts
from repro.schedules.registry import available_schemes, build_schedule, scheme_traits
from repro.sim.engine import simulate

REPEATS = 5
cost = perfsuite.suite_cost_model()
ratios = {}
for scheme in available_schemes():
    if scheme_traits(scheme).cost_parameterized:
        continue  # search output depends on the cost model; no fixed case
    arts = ScheduleArtifacts(build_schedule(scheme, 16, 64))
    lowered, lg = arts.schedule_for(True), arts.graph_for(True)
    fused, fg = arts.schedule_for(True, True), arts.graph_for(True, True)
    simulate(lowered, cost, graph=lg)  # warm-up: dense forms build here
    simulate(fused, cost, graph=fg)
    best_lowered = best_fused = float("inf")
    gc.disable()
    try:
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            simulate(lowered, cost, graph=lg)
            best_lowered = min(best_lowered, time.perf_counter() - t0)
            t0 = time.perf_counter()
            simulate(fused, cost, graph=fg)
            best_fused = min(best_fused, time.perf_counter() - t0)
    finally:
        gc.enable()
    ratios[scheme] = best_lowered / best_fused
    del arts, lowered, fused, lg, fg
    gc.collect()
print(json.dumps(ratios))
"""


def test_acceptance_fused_event_speedup_at_d16():
    """fuse_comm acceptance: batching each SEND/RECV pair into one
    transfer makes the event engine >= 1.2x faster per schedule (same
    logical workload, ~1/3 fewer events) at D=16, N=64 on the comm-heavy
    schemes, and never slower on any scheme. Measured in a fresh
    subprocess (see :data:`FUSED_RATIO_SCRIPT`)."""
    root = pathlib.Path(__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    env["REPRO_CACHE_DISABLE"] = "1"
    proc = subprocess.run(
        [sys.executable, "-c", FUSED_RATIO_SCRIPT],
        cwd=root,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    ratios = json.loads(proc.stdout)
    assert set(ratios) == set(SUITE_SCHEMES)
    comm_heavy = {s: ratios[s] for s in COMM_HEAVY}
    worst = min(comm_heavy, key=comm_heavy.get)
    assert comm_heavy[worst] >= 1.2, (
        f"fused lowering only {comm_heavy[worst]:.2f}x on {worst} "
        f"(all: { {k: round(v, 2) for k, v in ratios.items()} })"
    )
    floor = min(ratios, key=ratios.get)
    assert ratios[floor] >= 1.05, (
        f"fusion near-regressed on {floor}: {ratios[floor]:.2f}x"
    )


class TestPlannerSection:
    """The schema-4 ``planner_qps`` load-harness section and its gates."""

    def test_payload_carries_planner_section(self, small_payload):
        planner = small_payload["planner_qps"]
        assert planner["requests"] == perfsuite.QPS_FAST_REQUESTS
        assert planner["distinct_requests"] < planner["requests"]
        assert planner["plan_many_wall_s"] > 0
        assert planner["plan_many_speedup"] > 1.0
        assert planner["clients"] == perfsuite.QPS_CLIENTS
        assert planner["client_batch"] == perfsuite.QPS_FAST_BATCH
        assert planner["qps"] > 0
        assert 0 < planner["p50_ms"] <= planner["p99_ms"]
        assert 0.0 <= planner["schedule_cache_hit_rate"] <= 1.0
        summary = small_payload["summary"]
        assert summary["planner_qps"] == planner["qps"]
        assert (
            summary["planner_plan_many_speedup"]
            == planner["plan_many_speedup"]
        )
        # The cache metadata block rides along on every payload.
        cache = small_payload["schedule_cache"]
        assert cache["hits"] + cache["misses"] > 0
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_planner_false_drops_the_section(self):
        payload = perfsuite.run_suite(**SMALL, planner=False)
        assert "planner_qps" not in payload
        assert "planner_qps" not in payload["summary"]

    def test_plan_many_floor_trips_checker(self, small_payload):
        """Like the contended floor: absolute, so an equally slow baseline
        does not excuse it."""
        slow = copy.deepcopy(small_payload)
        slow["planner_qps"]["plan_many_speedup"] = (
            perfsuite.PLAN_MANY_SPEEDUP_FLOOR - 0.1
        )
        violations = perfsuite.check_against(slow, slow)
        assert any(
            "plan_many" in v and "floor" in v for v in violations
        ), violations

    def test_qps_regression_trips_checker(self, small_payload):
        slowed = copy.deepcopy(small_payload)
        slowed["planner_qps"]["qps"] *= 0.7
        violations = perfsuite.check_against(slowed, small_payload)
        assert any("planner_qps: QPS regressed" in v for v in violations)
        # 30% is invisible at a 40% tolerance.
        assert not any(
            "QPS regressed" in v
            for v in perfsuite.check_against(
                slowed, small_payload, tolerance=0.40
            )
        )

    def test_missing_section_against_planner_baseline_trips(self, small_payload):
        current = copy.deepcopy(small_payload)
        del current["planner_qps"]
        violations = perfsuite.check_against(current, small_payload)
        assert any(
            "planner_qps section disappeared" in v for v in violations
        )
        # ... but a planner-less baseline doesn't demand one.
        baseline = copy.deepcopy(small_payload)
        del baseline["planner_qps"]
        assert perfsuite.check_against(baseline, baseline) == []

    def test_injected_slowdown_drops_qps(self, small_payload):
        """The CI self-test path: injection scales the planner walls, so
        the measured QPS sinks and the normalized gate trips."""
        slowed = perfsuite.run_planner_qps(
            fast=True, slowdown=3.0, multiprocess=False
        )
        clean = small_payload["planner_qps"]
        assert slowed["plan_many_wall_s"] > 0
        assert slowed["qps"] < clean["qps"]

    def test_payload_carries_multiprocess_phase(self, small_payload):
        planner = small_payload["planner_qps"]
        assert planner["mp_workers"] == perfsuite.QPS_MP_WORKERS
        assert planner["cpu_count"] >= 1
        assert planner["mp_wall_s"] > 0
        assert planner["mp_qps"] > 0
        assert planner["mp_speedup"] > 0
        summary = small_payload["summary"]
        assert summary["planner_mp_qps"] == planner["mp_qps"]
        assert summary["planner_mp_speedup"] == planner["mp_speedup"]

    def test_payload_carries_coalesce_phase(self, small_payload):
        planner = small_payload["planner_qps"]
        assert planner["coalesce_clients"] == perfsuite.QPS_CLIENTS
        assert planner["coalesce_window_ms"] == perfsuite.QPS_COALESCE_MS
        # The whole point: K concurrent clients, fewer than K dispatches.
        assert planner["coalesce_batches"] < planner["coalesce_clients"]
        assert planner["coalesced_requests"] > 0
        assert planner["coalesce_dispatched"] == planner["coalesce_clients"]

    def test_mp_floor_trips_checker_on_big_hosts_only(self, small_payload):
        """The 2x floor is conditioned on the recorded host: a 4-worker
        pool on a >= 4-core box must clear it, while a 1-core CI runner
        records the phase without being judged by it."""
        slow = copy.deepcopy(small_payload)
        planner = slow["planner_qps"]
        planner["mp_speedup"] = 1.0
        planner["cpu_count"] = 8
        planner["mp_workers"] = perfsuite.QPS_MP_WORKERS
        violations = perfsuite.check_against(slow, slow)
        assert any(
            "multiprocess QPS" in v and "floor" in v for v in violations
        ), violations
        planner["cpu_count"] = 1  # same ratio, small host: no judgement
        assert not any(
            "floor" in v and "multiprocess" in v
            for v in perfsuite.check_against(slow, slow)
        )

    def test_mp_qps_regression_trips_checker(self, small_payload):
        slowed = copy.deepcopy(small_payload)
        slowed["planner_qps"]["mp_qps"] *= 0.5
        violations = perfsuite.check_against(slowed, small_payload)
        assert any(
            "planner_qps: multiprocess QPS regressed" in v
            for v in violations
        ), violations

    def test_mp_phase_disappearing_trips_checker(self, small_payload):
        current = copy.deepcopy(small_payload)
        del current["planner_qps"]["mp_qps"]
        violations = perfsuite.check_against(current, small_payload)
        assert any(
            "multiprocess phase disappeared" in v for v in violations
        ), violations


def test_acceptance_plan_many_speedup_at_d16():
    """Planner-service acceptance: the full 1000-request heterogeneous
    stream (D=16-capable grids on both machine models), planned as one
    ``plan_many`` batch, at least 5x
    (:data:`perfsuite.PLAN_MANY_SPEEDUP_FLOOR`) faster than per-request
    ``plan_configurations`` — with every entry verified 1e-9-identical to
    the sequential reference inside ``run_planner_qps`` (it raises on any
    divergence). The concurrent-client phase is skipped: QPS needs a
    baseline to gate against, while this floor is absolute."""
    section = perfsuite.run_planner_qps(
        fast=False, concurrent=False, multiprocess=False
    )
    assert section["requests"] == perfsuite.QPS_REQUESTS
    speedup = section["plan_many_speedup"]
    assert speedup >= perfsuite.PLAN_MANY_SPEEDUP_FLOOR, (
        f"plan_many only {speedup:.1f}x sequential planning "
        f"(sequential {section['sequential_wall_s']:.1f}s extrapolated, "
        f"batch {section['plan_many_wall_s']:.1f}s)"
    )


def test_default_output_name(small_payload):
    name = perfsuite.default_output_name(small_payload)
    assert name.startswith("BENCH_") and name.endswith(".json")


def test_zero_repeats_rejected():
    """repeats=0 would bake an unfailable (ops/sec 0, NaN) baseline."""
    with pytest.raises(ValueError, match="repeats"):
        perfsuite.run_suite(fast=True, schemes=("gpipe",), repeats=0)
