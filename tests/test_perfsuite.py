"""The ``repro bench`` suite, its JSON schema, and the CI regression gate.

The deterministic parts (schema, checksum, checker verdicts) are tested
exactly; the timing-dependent parts (speedups) are tested against wide
margins on reduced grids, plus the acceptance measurement — the batch
path at least 3x the event engine on the D=16, N=64 grid — on the full
scheme list.
"""

import copy
import json

import pytest

from repro.bench import perfsuite
from repro.cli import main
from repro.schedules.registry import available_schemes

#: Reduced grid shared by the deterministic tests: small, but still both
#: communication modes and a mix of fused/split-backward schemes.
SMALL = dict(fast=True, schemes=("gpipe", "chimera", "zb_h1"), repeats=1, batch_size=3)


@pytest.fixture(scope="module")
def small_payload():
    return perfsuite.run_suite(**SMALL)


def test_suite_grid_covers_every_scheme():
    cases = perfsuite.suite_cases()
    assert len(cases) == len(available_schemes()) * 3 * 5
    ids = {c.case_id for c in cases}
    assert len(ids) == len(cases)
    for scheme in available_schemes():
        for depth in perfsuite.SUITE_DEPTHS:
            for mode in perfsuite.MODES:
                assert f"{scheme}/D{depth}/N64/{mode}" in ids
    assert perfsuite.MODES == (
        "implicit", "lowered", "fused", "contended", "contended_fused"
    )
    assert len(perfsuite.suite_cases(fast=True)) == len(available_schemes()) * 5


def test_payload_schema(small_payload):
    payload = small_payload
    assert payload["schema_version"] == perfsuite.SCHEMA_VERSION
    assert payload["suite"] == "fast"
    assert payload["calibration_score"] > 0
    assert len(payload["cases"]) == len(SMALL["schemes"]) * 5
    assert "contended_batch_speedup_min" in payload["summary"]
    for case in payload["cases"]:
        assert case["ops"] > 0
        assert case["compute_makespan"] > 0
        assert case["iteration_time"] >= case["compute_makespan"]
        for engine in ("event", "fast", "batch"):
            assert case[engine]["ops_per_sec"] > 0
    summary = payload["summary"]
    assert summary["makespan_checksum"] == perfsuite.makespan_checksum(payload["cases"])
    # JSON-serializable end to end.
    json.loads(json.dumps(payload))


def test_makespans_are_deterministic(small_payload):
    again = perfsuite.run_suite(**SMALL)
    assert (
        again["summary"]["makespan_checksum"]
        == small_payload["summary"]["makespan_checksum"]
    )


def test_self_check_passes(small_payload):
    assert perfsuite.check_against(small_payload, small_payload) == []


def test_injected_25pct_slowdown_fails_gate(small_payload):
    """The acceptance scenario: a synthetic 25% throughput drop is caught."""
    slowed = copy.deepcopy(small_payload)
    for case in slowed["cases"]:
        for engine in ("event", "fast", "batch"):
            case[engine]["ops_per_sec"] *= 0.75
    violations = perfsuite.check_against(slowed, small_payload)
    assert violations, "25% slowdown must trip the 20% gate"
    assert any("throughput regressed" in v for v in violations)
    # 25% is invisible at a 30% tolerance: the knob works both ways.
    assert perfsuite.check_against(slowed, small_payload, tolerance=0.30) == []


def test_makespan_mismatch_fails_gate(small_payload):
    wrong = copy.deepcopy(small_payload)
    wrong["cases"][0]["compute_makespan"] += 1e-6
    violations = perfsuite.check_against(wrong, small_payload)
    assert any("compute_makespan mismatch" in v for v in violations)


def test_case_set_and_schema_guards(small_payload):
    missing = copy.deepcopy(small_payload)
    dropped = missing["cases"].pop(0)
    violations = perfsuite.check_against(missing, small_payload)
    assert any(dropped["id"] in v and "disappeared" in v for v in violations)

    other_schema = copy.deepcopy(small_payload)
    other_schema["schema_version"] = perfsuite.SCHEMA_VERSION + 1
    assert any(
        "schema version mismatch" in v
        for v in perfsuite.check_against(other_schema, small_payload)
    )

    other_suite = copy.deepcopy(small_payload)
    other_suite["suite"] = "full"
    assert any(
        "suite mismatch" in v
        for v in perfsuite.check_against(other_suite, small_payload)
    )


def test_slowdown_injection_scales_measurements():
    base = perfsuite.run_suite(fast=True, schemes=("gpipe",), repeats=1, batch_size=2)
    slowed = perfsuite.run_suite(
        fast=True,
        schemes=("gpipe",),
        repeats=1,
        batch_size=2,
        inject_slowdown=4.0,
    )
    assert slowed["inject_slowdown"] == 4.0
    # Makespans are simulation outputs, not wall times: untouched.
    assert (
        slowed["summary"]["makespan_checksum"]
        == base["summary"]["makespan_checksum"]
    )
    for cur, ref in zip(slowed["cases"], base["cases"]):
        assert cur["event"]["wall_s"] > ref["event"]["wall_s"]


def test_cli_bench_writes_json_and_gates(tmp_path):
    out = tmp_path / "BENCH_test.json"
    baseline = tmp_path / "baseline.json"
    code = main(["bench", "--fast", "--repeats", "1", "-o", str(baseline)])
    assert code == 0
    payload = json.loads(baseline.read_text())
    assert payload["schema_version"] == perfsuite.SCHEMA_VERSION

    # Wide margins keep this a plumbing test, not a timing test (the
    # tight 20%-tolerance logic is covered deterministically above): a
    # clean re-run passes at 90% tolerance...
    code = main(
        [
            "bench", "--fast", "--repeats", "1",
            "-o", str(out), "--check-against", str(baseline),
            "--tolerance", "0.9",
        ]
    )
    assert code == 0
    # ...and a 100x synthetic slowdown fails even there.
    code = main(
        [
            "bench", "--fast", "--repeats", "1",
            "-o", str(out), "--check-against", str(baseline),
            "--tolerance", "0.9", "--inject-slowdown", "100.0",
        ]
    )
    assert code == 1


def test_acceptance_batch_speedup_at_d16():
    """Tentpole acceptance: batch path >= 3x the event engine at D=16, N=64
    for every registered scheme across all five modes — and >= 5x
    (:data:`perfsuite.CONTENDED_BATCH_SPEEDUP_FLOOR`) on the lowered
    *contended* cases, where the event engine pays per-event channel
    bookkeeping while the kernel's FIFO serialization stays in one
    vectorized sweep. Makespan parity is enforced inside ``run_case``
    (it raises beyond 1e-9), fused-vs-lowered parity in ``run_suite``."""
    payload = perfsuite.run_suite(depths=(16,), repeats=2)
    assert len(payload["cases"]) == len(available_schemes()) * 5
    worst = payload["summary"]["d16_batch_speedup_min"]
    assert worst >= 3.0, f"batch path only {worst:.1f}x the event engine"
    contended = payload["summary"]["d16_contended_batch_speedup_min"]
    assert contended >= perfsuite.CONTENDED_BATCH_SPEEDUP_FLOOR, (
        f"contended batch path only {contended:.1f}x the event engine"
    )
    assert perfsuite.check_against(payload, payload) == []


def test_contended_floor_trips_checker(small_payload):
    """A run whose D=16 contended speedup sinks below the absolute floor
    fails the gate even against an equally slow baseline."""
    slow = copy.deepcopy(small_payload)
    slow["summary"]["d16_contended_batch_speedup_min"] = 4.2
    violations = perfsuite.check_against(slow, slow)
    assert any("below" in v and "floor" in v for v in violations)


#: Schemes whose lowered form is dominated by SEND/RECV pairs (two of
#: every three ops), where batching must buy a comfortable margin.
#: PipeDream's per-micro-batch allreduces and the stable-pattern
#: V-schedules' denser compute dilute the comm fraction, so those three
#: get the softer all-scheme floor only.
COMM_HEAVY = ("gpipe", "dapple", "gems", "chimera", "pipedream_2bw", "zb_h1", "zb_v")


def _fused_event_ratio(scheme: str, *, repeats: int = 5) -> float:
    """Best-of interleaved lowered/fused event wall ratio at D=16, N=64.

    The two variants are timed back-to-back per repetition so CPU
    frequency drift between suite cases cannot bias the ratio.
    """
    import gc
    import time

    from repro.schedules.cache import schedule_artifacts
    from repro.sim.engine import simulate

    arts = schedule_artifacts(scheme, 16, 64)
    lowered, lg = arts.schedule_for(True), arts.graph_for(True)
    fused, fg = arts.schedule_for(True, True), arts.graph_for(True, True)
    cost = perfsuite.suite_cost_model()
    simulate(lowered, cost, graph=lg)  # warm-up: dense forms build here
    simulate(fused, cost, graph=fg)
    best_lowered = best_fused = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            simulate(lowered, cost, graph=lg)
            best_lowered = min(best_lowered, time.perf_counter() - t0)
            t0 = time.perf_counter()
            simulate(fused, cost, graph=fg)
            best_fused = min(best_fused, time.perf_counter() - t0)
    finally:
        if was_enabled:
            gc.enable()
    return best_lowered / best_fused


def test_acceptance_fused_event_speedup_at_d16():
    """fuse_comm acceptance: batching each SEND/RECV pair into one
    transfer makes the event engine >= 1.2x faster per schedule (same
    logical workload, ~1/3 fewer events) at D=16, N=64 on the comm-heavy
    schemes, and never slower on any scheme."""
    ratios = {s: _fused_event_ratio(s) for s in available_schemes()}
    comm_heavy = {s: ratios[s] for s in COMM_HEAVY}
    worst = min(comm_heavy, key=comm_heavy.get)
    assert comm_heavy[worst] >= 1.2, (
        f"fused lowering only {comm_heavy[worst]:.2f}x on {worst} "
        f"(all: { {k: round(v, 2) for k, v in ratios.items()} })"
    )
    floor = min(ratios, key=ratios.get)
    assert ratios[floor] >= 1.05, (
        f"fusion near-regressed on {floor}: {ratios[floor]:.2f}x"
    )


def test_default_output_name(small_payload):
    name = perfsuite.default_output_name(small_payload)
    assert name.startswith("BENCH_") and name.endswith(".json")


def test_zero_repeats_rejected():
    """repeats=0 would bake an unfailable (ops/sec 0, NaN) baseline."""
    with pytest.raises(ValueError, match="repeats"):
        perfsuite.run_suite(fast=True, schemes=("gpipe",), repeats=0)
