"""Property-based tests over the schedule builders (hypothesis).

Every (scheme, D, N, options) combination must produce a structurally valid
schedule; on top of that, scheme-specific invariants (memory bounds,
bubble-count formulas, conflict-free merges) must hold for *arbitrary*
shapes, not just the hand-picked ones of the unit tests.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedules.chimera import ConcatStrategy, build_chimera_schedule
from repro.schedules.registry import available_schemes, build_schedule
from repro.schedules.validate import validate_schedule
from repro.sim.cost import CostModel
from repro.sim.engine import simulate, simulate_polling
from repro.sim.memory import MemoryModel, analyze_memory
from repro.sim.metrics import bubble_ratio
from repro.sim.network import FlatTopology, LinkSpec

SETTINGS = settings(max_examples=40, deadline=None)

even_depths = st.sampled_from([2, 4, 6, 8, 10, 12])
any_depths = st.integers(min_value=1, max_value=12)
micro_batches = st.integers(min_value=1, max_value=24)
#: Unit-cost multipliers for the differential engine test; bounded away
#: from zero so durations stay positive and well-conditioned.
cost_units = st.floats(
    min_value=0.1, max_value=4.0, allow_nan=False, allow_infinity=False
)


@SETTINGS
@given(scheme=st.sampled_from(available_schemes()), depth=even_depths, n=micro_batches)
def test_every_schedule_validates(scheme, depth, n):
    schedule = build_schedule(scheme, depth, n)
    validate_schedule(schedule, require_sync_ops=(scheme != "pipedream"))


@SETTINGS
@given(
    scheme=st.sampled_from(available_schemes()),
    depth=even_depths,
    n=micro_batches,
    recompute=st.booleans(),
)
def test_every_schedule_simulates(scheme, depth, n, recompute):
    schedule = build_schedule(scheme, depth, n, recompute=recompute)
    result = simulate(schedule, CostModel.practical())
    # Work conservation: total busy time equals the scheduled compute.
    expected = sum(
        result.cost_model.compute_time(op) for _, op in schedule.compute_ops()
    )
    total_busy = sum(result.busy_time(w) for w in range(schedule.num_workers))
    assert total_busy == pytest.approx(expected)
    assert 0.0 <= bubble_ratio(result) < 1.0


@SETTINGS
@given(
    scheme=st.sampled_from(available_schemes()),
    depth=st.sampled_from([2, 4, 6, 8]),
    n=st.integers(min_value=1, max_value=12),
    f=cost_units,
    b=cost_units,
    w=cost_units,
    alpha=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_event_engine_matches_polling_reference(scheme, depth, n, f, b, w, alpha):
    """Differential test: for every registered scheme and random (D, N,
    f/b/w costs), the heap-based event engine and the seed's round-robin
    polling loop produce identical timings on the implicit-communication
    path — every op's start/end within 1e-9, not just the makespan.
    (Blocking-sync parity is covered at safe shapes in
    ``tests/test_sim_engine.py``; an eager mid-schedule collective can
    legitimately deadlock under blocking semantics at shallow depths.)"""
    schedule = build_schedule(scheme, depth, n)
    cost = CostModel(
        forward_time=f,
        backward_input_ratio=b / f,
        backward_weight_ratio=w / f,
        topology=FlatTopology(LinkSpec(alpha=alpha, beta=0.0)),
        activation_message_bytes=1.0,
        stage_grad_bytes=25.0,
        data_parallel_width=2,
        sync_launch_overhead=0.01,
    )
    fast = simulate(schedule, cost)
    reference = simulate_polling(schedule, cost)
    assert fast.iteration_time == pytest.approx(
        reference.iteration_time, abs=1e-9
    )
    assert fast.compute_makespan == pytest.approx(
        reference.compute_makespan, abs=1e-9
    )
    for key, timed in fast.timed.items():
        assert timed.start == pytest.approx(reference.timed[key].start, abs=1e-9)
        assert timed.end == pytest.approx(reference.timed[key].end, abs=1e-9)


@SETTINGS
@given(depth=even_depths, n=micro_batches)
def test_chimera_single_occupancy(depth, n):
    """No two compute ops overlap on one worker — the §3.1 conflict-free
    merge guarantee, checked on simulated timings."""
    schedule = build_chimera_schedule(depth, n)
    result = simulate(schedule, CostModel.practical())
    for w in range(depth):
        timed = sorted(result.timed_ops_on(w), key=lambda t: t.start)
        for a, b in zip(timed, timed[1:]):
            assert b.start >= a.end - 1e-9


@SETTINGS
@given(depth=st.sampled_from([4, 6, 8, 12]), k=st.integers(1, 4))
def test_chimera_activation_upper_bound(depth, k):
    """Table 2: Chimera activations never exceed D * Ma per worker."""
    schedule = build_chimera_schedule(depth, depth * k, concat="direct")
    report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
    assert max(w.activation_peak_units for w in report.workers) <= depth


@SETTINGS
@given(depth=st.sampled_from([4, 6, 8]), k=st.integers(1, 3))
def test_chimera_best_strategy_beats_or_ties_dapple(depth, k):
    """For the regular shapes the paper evaluates (N a multiple of D, or
    N <= D), Chimera's best concatenation strategy beats DAPPLE's 2(D-1)
    bubbles under the practical cost model. Our direct concatenation keeps
    (D-3) bubbles per extra unit, so at large K the winner is backward
    halving (constant bubbles); ragged N (not a multiple of D) is a known
    weakness the configuration selector avoids."""
    cost = CostModel.practical()
    for n in (depth // 2, depth * k):
        best = min(
            simulate(
                build_chimera_schedule(depth, n, concat=strategy), cost
            ).compute_makespan
            for strategy in ("direct", "halving")
        )
        dapple = simulate(build_schedule("dapple", depth, n), cost)
        assert best <= dapple.compute_makespan + 1e-9


@SETTINGS
@given(
    depth=st.sampled_from([4, 8]),
    k=st.integers(1, 3),
    strategy=st.sampled_from(list(ConcatStrategy)),
    f=st.sampled_from([1, 2]),
)
def test_concat_strategies_always_valid(depth, k, strategy, f):
    if f == 2 and depth == 4 and strategy is not ConcatStrategy.DIRECT:
        n = depth * k
    else:
        n = depth * k + (k % 2)  # exercise odd residues too
    schedule = build_chimera_schedule(
        depth, n, concat=strategy, num_down_pipelines=f
    )
    validate_schedule(schedule, require_sync_ops=True)


@SETTINGS
@given(depth=even_depths, n=micro_batches, mode=st.sampled_from(["lazy", "eager", "eager_opt"]))
def test_sync_modes_place_every_collective(depth, n, mode):
    schedule = build_chimera_schedule(depth, n, sync_mode=mode)
    sync_pairs = {
        (op.replica, op.stage)
        for _, op in schedule.all_ops()
        if not op.is_compute
    }
    hosted = {
        pair
        for w in range(depth)
        for pair in schedule.replicas_hosted_by(w)
    }
    assert sync_pairs == hosted


@SETTINGS
@given(depth=even_depths, n=micro_batches)
def test_gems_constant_memory(depth, n):
    schedule = build_schedule("gems", depth, n)
    report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
    assert all(w.activation_peak_units == 1 for w in report.workers)


@SETTINGS
@given(depth=even_depths, n=micro_batches)
def test_gpipe_memory_proportional_to_n(depth, n):
    schedule = build_schedule("gpipe", depth, n)
    report = analyze_memory(schedule, MemoryModel(activation_bytes=1.0))
    assert all(w.activation_peak_units == n for w in report.workers)
